"""Per-run measurement: what one executed query cost.

A :class:`RunResult` packages everything the paper reports about a single
query execution: rows produced, simulated execution time split into CPU and
blocking I/O wait (Figure 4's bar segments), and the I/O request / volume
accounting of Table II.  :func:`measure` wraps an operator execution with
snapshot/diff bookkeeping around the shared clock and disk stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.database import Database
from repro.exec.iterator import Operator
from repro.storage.disk import DiskStats
from repro.storage.types import Row


@dataclass
class RunResult:
    """Everything measured about one query execution."""

    rows: list[Row]
    io_ms: float
    cpu_ms: float
    disk: DiskStats
    buffer_hits: int
    buffer_misses: int
    extras: dict = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """Total simulated execution time in milliseconds."""
        return self.io_ms + self.cpu_ms

    @property
    def total_seconds(self) -> float:
        """Total simulated execution time in seconds."""
        return self.total_ms / 1000.0

    @property
    def row_count(self) -> int:
        """Number of rows the query produced (works with keep_rows=False)."""
        if "row_count" in self.extras:
            return self.extras["row_count"]
        return len(self.rows)

    @property
    def read_gb(self) -> float:
        """Data transferred from disk, in GB (Table II's second row)."""
        return self.disk.bytes_read / 1e9

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(rows={self.row_count}, time={self.total_seconds:.3f}s "
            f"[io={self.io_ms / 1000:.3f}s cpu={self.cpu_ms / 1000:.3f}s], "
            f"io_requests={self.disk.requests}, read={self.read_gb:.3f}GB)"
        )


def measure(db: Database, plan: Operator, cold: bool = True,
            keep_rows: bool = True) -> RunResult:
    """Execute ``plan`` on ``db`` and measure it.

    With ``cold=True`` (the paper's methodology) all caches are dropped
    first.  With ``keep_rows=False`` output rows are counted but discarded,
    for large sweeps where materialization would dominate Python time.

    Execution drains the plan's batch protocol — operators with a native
    ``batches()`` run vectorized, the rest through the row-compat shim.
    Per-tuple simulated charges are identical either way; in plans with
    several I/O-bearing operators, batch draining also clusters each
    subtree's page accesses, which the simulated disk head and buffer
    LRU reward with better locality (as real hardware would) — measured
    baselines therefore reflect batch-execution I/O patterns.
    """
    # One bookkeeping implementation: a StreamingRun drained in place.
    # Snapshot/diff logic lives only there, so one-shot and streaming
    # executions can never diverge in what they measure.
    run = StreamingRun(db, plan, cold=cold)
    rows: list[Row] = []
    batch = run.next_batch()
    while batch is not None:
        if keep_rows:
            rows += batch
        batch = run.next_batch()
    return run.result(rows if keep_rows else None)


class StreamingRun:
    """Incremental execution of one plan: pull batches, measure any time.

    The engine of :class:`~repro.api.session.Cursor` streaming: where
    :func:`measure` drains a plan to completion in one call,
    ``StreamingRun`` hands out operator batches one at a time
    (``fetchmany`` pulls only what it needs — no full materialization)
    and can report the simulated cost of the run *so far* at any point.
    Per-batch charges are identical to :func:`measure`'s — both drive
    the same ``batches()`` protocol — so a fully-drained streaming run
    is measurement-identical to a one-shot one.

    Snapshots are taken against the database's shared clock/disk/buffer,
    so running *another* query on the same database before this one is
    drained folds that query's charges into this measurement (and a
    ``cold=True`` start resets the caches mid-stream).  Drain or close a
    streaming run before starting the next cold run.
    """

    def __init__(self, db: Database, plan: Operator, cold: bool = True):
        self.db = db
        self.plan = plan
        ctx = db.cold_run() if cold else db.context()
        self._io0, self._cpu0 = db.clock.snapshot()
        self._disk0 = db.disk.stats.snapshot()
        self._hits0 = db.buffer.stats.hits
        self._misses0 = db.buffer.stats.misses
        self._batches = plan.batches(ctx)
        self.rows_produced = 0
        self.exhausted = False
        self.closed = False

    def next_batch(self) -> list[Row] | None:
        """The next non-empty batch, or ``None`` once the plan is done."""
        if self.closed or self.exhausted:
            return None
        batch = next(self._batches, None)
        if batch is None:
            self.exhausted = True
            return None
        self.rows_produced += len(batch)
        return batch

    def result(self, rows: list[Row] | None = None) -> RunResult:
        """The measurement up to now (partial unless ``exhausted``).

        ``rows`` lets a caller that kept the fetched rows attach them;
        ``row_count`` always reports rows *produced*, kept or not, and
        ``extras["partial"]`` records whether the plan was cut short.
        """
        io1, cpu1 = self.db.clock.snapshot()
        run = RunResult(
            rows=rows if rows is not None else [],
            io_ms=io1 - self._io0,
            cpu_ms=cpu1 - self._cpu0,
            disk=self.db.disk.stats.diff(self._disk0),
            buffer_hits=self.db.buffer.stats.hits - self._hits0,
            buffer_misses=self.db.buffer.stats.misses - self._misses0,
        )
        run.extras["row_count"] = self.rows_produced
        run.extras["partial"] = not self.exhausted
        return run

    def close(self) -> None:
        """Abandon the run; further ``next_batch`` calls return None."""
        if not self.closed:
            close = getattr(self._batches, "close", None)
            if close is not None:
                close()
            self.closed = True


def count_rows(rows: Iterable[Row]) -> int:
    """Drain an iterator, returning how many rows it yielded."""
    n = 0
    for _ in rows:
        n += 1
    return n


MeasureFn = Callable[[Database, Operator], RunResult]
