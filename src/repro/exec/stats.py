"""Per-run measurement: what one executed query cost.

A :class:`RunResult` packages everything the paper reports about a single
query execution: rows produced, simulated execution time split into CPU and
blocking I/O wait (Figure 4's bar segments), and the I/O request / volume
accounting of Table II.  Measurement is ledger-based: every
:class:`StreamingRun` owns a private :class:`~repro.runtime.CostLedger`
and wraps each batch pull in a runtime attribution window, so any number
of interleaved runs on one database report correct isolated costs.
:func:`measure` wraps an operator execution in a streaming run drained to
completion.

Ledgers are also *published*: when tracing is enabled every run opens a
query span and closes it with its final ledger, so consumers that want
per-query costs after the fact should read them from the telemetry
history store (:mod:`repro.telemetry.store` — queryable via SQL,
rollups in :mod:`repro.telemetry.rollups`) instead of holding on to
``RunResult`` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.database import Database
from repro.exec.iterator import Batch, Chunk, Operator
from repro.runtime import CostLedger
from repro.storage.disk import DiskStats
from repro.storage.types import Row


@dataclass
class RunResult:
    """Everything measured about one query execution."""

    rows: list[Row]
    io_ms: float
    cpu_ms: float
    disk: DiskStats
    buffer_hits: int
    buffer_misses: int
    extras: dict = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """Total simulated execution time in milliseconds."""
        return self.io_ms + self.cpu_ms

    @property
    def total_seconds(self) -> float:
        """Total simulated execution time in seconds."""
        return self.total_ms / 1000.0

    @property
    def row_count(self) -> int:
        """Number of rows the query produced (works with keep_rows=False)."""
        if "row_count" in self.extras:
            return self.extras["row_count"]
        return len(self.rows)

    @property
    def read_gb(self) -> float:
        """Data transferred from disk, in GB (Table II's second row)."""
        return self.disk.bytes_read / 1e9

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(rows={self.row_count}, time={self.total_seconds:.3f}s "
            f"[io={self.io_ms / 1000:.3f}s cpu={self.cpu_ms / 1000:.3f}s], "
            f"io_requests={self.disk.requests}, read={self.read_gb:.3f}GB)"
        )


def measure(db: Database, plan: Operator, cold: bool = True,
            keep_rows: bool = True) -> RunResult:
    """Execute ``plan`` on ``db`` and measure it.

    With ``cold=True`` (the paper's methodology) all caches are dropped
    first.  With ``keep_rows=False`` output rows are counted but discarded,
    for large sweeps where materialization would dominate Python time.

    Execution drains the plan's batch protocol — operators with a native
    ``batches()`` run vectorized, the rest through the row-compat shim.
    Per-tuple simulated charges are identical either way; in plans with
    several I/O-bearing operators, batch draining also clusters each
    subtree's page accesses, which the simulated disk head and buffer
    LRU reward with better locality (as real hardware would) — measured
    baselines therefore reflect batch-execution I/O patterns.
    """
    # One bookkeeping implementation: a StreamingRun drained in place.
    # Ledger attribution lives only there, so one-shot and streaming
    # executions can never diverge in what they measure.
    run = StreamingRun(db, plan, cold=cold)
    rows: list[Row] = []
    batch = run.next_batch()
    while batch is not None:
        if keep_rows:
            # Rowify at the boundary: internal batches stay columnar.
            rows += batch.to_rows() if isinstance(batch, Chunk) else batch
        batch = run.next_batch()
    return run.result(rows if keep_rows else None)


class StreamingRun:
    """Incremental execution of one plan: pull batches, measure any time.

    The engine of :class:`~repro.api.session.Cursor` streaming: where
    :func:`measure` drains a plan to completion in one call,
    ``StreamingRun`` hands out operator batches one at a time
    (``fetchmany`` pulls only what it needs — no full materialization)
    and can report the simulated cost of the run *so far* at any point.
    Per-batch charges are identical to :func:`measure`'s — both drive
    the same ``batches()`` protocol — so a fully-drained streaming run
    is measurement-identical to a one-shot one.

    Costs are accounted in a private :class:`~repro.runtime.CostLedger`:
    every batch pull opens an attribution window on the shared runtime,
    so any number of runs may interleave on one database — they contend
    on the shared disk head and buffer pool (as concurrent queries
    should) while each ledger records only its own query's charges.
    Starting a *cold* run (``cold=True`` here, ``Database.cold_run()``,
    ``execute(cold=True)``) while another run is live raises
    :class:`~repro.errors.ExecutionError` instead of silently resetting
    the caches under the draining cursor.
    """

    def __init__(self, db: Database, plan: Operator, cold: bool = True):
        self.db = db
        self.plan = plan
        # cold_run() resets the substrate (and raises if any *other*
        # run is live) before this run registers itself below.
        ctx = db.cold_run() if cold else db.context()
        self.ledger: CostLedger = ctx.ledger
        self._runtime = db.runtime
        self._batches = plan.batches(ctx)
        self.rows_produced = 0
        self.exhausted = False
        self.closed = False
        self._runtime.register_stream(self)
        # Open the telemetry query span (-1 while tracing is off); any
        # statement context the session layer noted attaches here.
        # repro: allow[RPL103] -- cross-method span: _finish_span() closes
        # it from next_batch()/close(), whichever ends the run
        self._query_id = self._runtime.tracer.begin_query(cold)
        self._span_closed = False

    @property
    def query_id(self) -> int:
        """The telemetry span id of this run (-1 while tracing is off)."""
        return self._query_id

    def _finish_span(self, partial: bool, error: str | None = None) -> None:
        if self._query_id >= 0 and not self._span_closed:
            self._span_closed = True
            self._runtime.tracer.finish_query(
                self._query_id, self.rows_produced, partial, self.ledger,
                error=error,
            )

    def next_batch(self) -> Batch | None:
        """The next non-empty batch (a :class:`Chunk` or row list), or
        ``None`` once the plan is done."""
        if self.closed or self.exhausted:
            return None
        tracer = self._runtime.tracer
        if tracer.enabled:
            # Operators emitting mid-pull (morph events) attribute here.
            tracer.current_query_id = self._query_id
        try:
            self._runtime.begin_attribution(self.ledger)
            try:
                batch = next(self._batches, None)
            finally:
                self._runtime.end_attribution()
        except BaseException as exc:
            # The plan died: the run can never be drained, so drop it
            # from the live registry (a later cold start must not be
            # blocked by a corpse).
            self._runtime.unregister_stream(self)
            self.closed = True
            self._finish_span(partial=True, error=type(exc).__name__)
            raise
        if batch is None:
            self.exhausted = True
            self._runtime.unregister_stream(self)
            self._finish_span(partial=False)
            return None
        self.rows_produced += len(batch)
        return batch

    def result(self, rows: list[Row] | None = None) -> RunResult:
        """The measurement up to now (partial unless ``exhausted``).

        ``rows`` lets a caller that kept the fetched rows attach them;
        ``row_count`` always reports rows *produced*, kept or not, and
        ``extras["partial"]`` records whether the plan was cut short.
        Reads this run's private ledger, so interleaved queries on the
        same database never fold into each other's measurements.
        """
        ledger = self.ledger
        run = RunResult(
            rows=rows if rows is not None else [],
            io_ms=ledger.io_ms,
            cpu_ms=ledger.cpu_ms,
            disk=ledger.disk.snapshot(),
            buffer_hits=ledger.buffer_hits,
            buffer_misses=ledger.buffer_misses,
        )
        run.extras["row_count"] = self.rows_produced
        run.extras["partial"] = not self.exhausted
        return run

    def close(self) -> None:
        """Abandon the run; further ``next_batch`` calls return None.

        Generator cleanup (operator ``finally`` blocks) is attributed
        to this run's ledger, like every other charge it caused.
        """
        if not self.closed:
            close = getattr(self._batches, "close", None)
            if close is not None:
                self._runtime.begin_attribution(self.ledger)
                try:
                    close()
                finally:
                    self._runtime.end_attribution()
            self.closed = True
            self._runtime.unregister_stream(self)
            self._finish_span(partial=not self.exhausted)


def count_rows(rows: Iterable[Row]) -> int:
    """Drain an iterator, returning how many rows it yielded."""
    n = 0
    for _ in rows:
        n += 1
    return n


MeasureFn = Callable[[Database, Operator], RunResult]
