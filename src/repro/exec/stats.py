"""Per-run measurement: what one executed query cost.

A :class:`RunResult` packages everything the paper reports about a single
query execution: rows produced, simulated execution time split into CPU and
blocking I/O wait (Figure 4's bar segments), and the I/O request / volume
accounting of Table II.  :func:`measure` wraps an operator execution with
snapshot/diff bookkeeping around the shared clock and disk stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.database import Database
from repro.exec.iterator import Operator
from repro.storage.disk import DiskStats
from repro.storage.types import Row


@dataclass
class RunResult:
    """Everything measured about one query execution."""

    rows: list[Row]
    io_ms: float
    cpu_ms: float
    disk: DiskStats
    buffer_hits: int
    buffer_misses: int
    extras: dict = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """Total simulated execution time in milliseconds."""
        return self.io_ms + self.cpu_ms

    @property
    def total_seconds(self) -> float:
        """Total simulated execution time in seconds."""
        return self.total_ms / 1000.0

    @property
    def row_count(self) -> int:
        """Number of rows the query produced (works with keep_rows=False)."""
        if "row_count" in self.extras:
            return self.extras["row_count"]
        return len(self.rows)

    @property
    def read_gb(self) -> float:
        """Data transferred from disk, in GB (Table II's second row)."""
        return self.disk.bytes_read / 1e9

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(rows={self.row_count}, time={self.total_seconds:.3f}s "
            f"[io={self.io_ms / 1000:.3f}s cpu={self.cpu_ms / 1000:.3f}s], "
            f"io_requests={self.disk.requests}, read={self.read_gb:.3f}GB)"
        )


def measure(db: Database, plan: Operator, cold: bool = True,
            keep_rows: bool = True) -> RunResult:
    """Execute ``plan`` on ``db`` and measure it.

    With ``cold=True`` (the paper's methodology) all caches are dropped
    first.  With ``keep_rows=False`` output rows are counted but discarded,
    for large sweeps where materialization would dominate Python time.

    Execution drains the plan's batch protocol — operators with a native
    ``batches()`` run vectorized, the rest through the row-compat shim.
    Per-tuple simulated charges are identical either way; in plans with
    several I/O-bearing operators, batch draining also clusters each
    subtree's page accesses, which the simulated disk head and buffer
    LRU reward with better locality (as real hardware would) — measured
    baselines therefore reflect batch-execution I/O patterns.
    """
    ctx = db.cold_run() if cold else db.context()
    io0, cpu0 = db.clock.snapshot()
    disk0 = db.disk.stats.snapshot()
    hits0, misses0 = db.buffer.stats.hits, db.buffer.stats.misses

    if keep_rows:
        rows = []
        for batch in plan.batches(ctx):
            rows += batch
    else:
        count = 0
        for batch in plan.batches(ctx):
            count += len(batch)
        rows = []
    io1, cpu1 = db.clock.snapshot()
    result = RunResult(
        rows=rows,
        io_ms=io1 - io0,
        cpu_ms=cpu1 - cpu0,
        disk=db.disk.stats.diff(disk0),
        buffer_hits=db.buffer.stats.hits - hits0,
        buffer_misses=db.buffer.stats.misses - misses0,
    )
    if not keep_rows:
        result.extras["row_count"] = count
    return result


def count_rows(rows: Iterable[Row]) -> int:
    """Drain an iterator, returning how many rows it yielded."""
    n = 0
    for _ in rows:
        n += 1
    return n


MeasureFn = Callable[[Database, Operator], RunResult]
