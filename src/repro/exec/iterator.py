"""Volcano-style physical operators.

Every operator exposes its output :class:`~repro.storage.types.Schema` and
a :meth:`Operator.rows` generator that pulls from its children, charging
simulated costs through the :class:`~repro.context.ExecutionContext` as it
goes.  Generators give exactly the pipelined, tuple-at-a-time execution
model whose preservation is one of Smooth Scan's selling points over the
blocking Sort Scan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from repro.context import ExecutionContext
from repro.storage.types import Row, Schema


class Operator(ABC):
    """Base class of all physical operators."""

    #: Output schema; set by each concrete operator's ``__init__``.
    schema: Schema

    @abstractmethod
    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        """Yield output rows, charging simulated costs on ``ctx``."""

    def children(self) -> tuple["Operator", ...]:
        """Child operators, for plan display; leaves return ()."""
        return ()

    def name(self) -> str:
        """Short display name used by :func:`explain`."""
        return type(self).__name__

    def collect(self, ctx: ExecutionContext) -> list[Row]:
        """Run to completion and materialize all output rows."""
        return list(self.rows(ctx))


def explain(op: Operator, depth: int = 0) -> str:
    """Render an operator tree as an indented single-string plan."""
    lines = ["  " * depth + f"-> {op.name()}"]
    for child in op.children():
        lines.append(explain(child, depth + 1))
    return "\n".join(lines)
