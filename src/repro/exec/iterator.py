"""Volcano-style physical operators with columnar batch execution.

Every operator exposes its output :class:`~repro.storage.types.Schema` and
two execution entry points:

* :meth:`Operator.rows` — the classic tuple-at-a-time generator: yield one
  row, charging simulated costs through the
  :class:`~repro.context.ExecutionContext` as it goes.  Generators give
  exactly the pipelined execution model whose preservation is one of
  Smooth Scan's selling points over the blocking Sort Scan.
* :meth:`Operator.batches` — columnar execution: yield *batches*, which
  are :class:`~repro.storage.chunk.Chunk` objects (named, array-backed
  columns plus an optional selection vector).  Operators on the hot path
  implement this natively — predicates are compiled to boolean masks over
  whole columns (:meth:`~repro.exec.expressions.Predicate.bind_mask`),
  filters narrow chunks by selection vector instead of copying rows,
  simulated costs are charged in bulk, and per-tuple Python overhead
  (generator resumption, closure calls, scalar boxing) is amortized over
  whole heap pages or morphing-region runs.

The two protocols are interchangeable: the base class provides a
row-compat shim both ways, so an operator may implement either one (or
both) and its parents may consume whichever they prefer.  A concrete
operator must override at least one of the two — calling an operator that
overrides neither raises ``NotImplementedError``.

Batch contract:

* a batch is a non-empty :class:`Chunk` (or, for legacy row-native
  producers, a non-empty ``list`` of rows — both support ``len()``,
  iteration yielding row tuples, indexing, and slicing); producers never
  yield empty batches, and the base-class shims enforce this — an empty
  producer yields *zero* batches, never an empty one;
* concatenating an operator's batches — i.e. chaining their row views —
  yields exactly its ``rows()`` stream, in the same order;
  ``Chunk.to_rows()`` round-trips exactly, including NULLs and CHAR
  values, and always yields built-in Python scalars;
* batch sizes are bounded but not fixed — natural producer units (a heap
  page, an extent run, a morphing region) are preferred over re-chunking,
  and the default shim chunks at :data:`DEFAULT_BATCH_SIZE`;
* every operator charges the same per-tuple simulated costs on both
  protocols, and a single operator run in isolation charges *identical*
  totals; the columnar representation is invisible to the cost model by
  construction, because charges key off page/run/tuple counts which the
  chunk carries.  In multi-operator plans, however, batching reorders
  page accesses between subtrees — children are drained in large chunks
  instead of row-by-row interleaving — and the simulated disk (head
  position) and buffer pool (LRU locality) legitimately reward that,
  exactly as real hardware rewards vectorized execution.  Cold-run
  figures are measured on the batch path (see
  :func:`~repro.exec.stats.measure`).
"""

from __future__ import annotations

from abc import ABC
from itertools import islice
from typing import Iterator, Union

from repro.context import ExecutionContext
from repro.storage.chunk import Chunk
from repro.storage.types import Row, Schema

#: A batch: a columnar chunk, or (legacy row-native producers) a row list.
Batch = Union[Chunk, list]

#: Rows per batch produced by the default ``rows() -> batches()`` shim.
DEFAULT_BATCH_SIZE = 1024

__all__ = [
    "Batch",
    "Chunk",
    "DEFAULT_BATCH_SIZE",
    "Operator",
    "explain",
]


class Operator(ABC):
    """Base class of all physical operators."""

    #: Output schema; set by each concrete operator's ``__init__``.
    schema: Schema

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        """Yield output rows, charging simulated costs on ``ctx``.

        The default implementation flattens :meth:`batches`; operators
        without a native batch implementation override this instead.
        """
        if type(self).batches is Operator.batches:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither rows() nor "
                "batches()"
            )
        for batch in self.batches(ctx):
            if not len(batch):
                raise AssertionError(
                    f"{type(self).__name__}.batches() yielded an empty "
                    "batch, violating the batch contract"
                )
            yield from batch

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Yield output batches (non-empty chunks), charging costs.

        The default implementation chunks :meth:`rows` into
        :data:`DEFAULT_BATCH_SIZE`-row :class:`Chunk` batches (an empty
        producer yields zero batches); batch-native operators override
        this with columnar execution.
        """
        if type(self).rows is Operator.rows:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither rows() nor "
                "batches()"
            )
        names = self.schema.column_names
        it = self.rows(ctx)
        while True:
            rows = list(islice(it, DEFAULT_BATCH_SIZE))
            if not rows:
                return
            yield Chunk.from_rows(names, rows)

    def children(self) -> tuple["Operator", ...]:
        """Child operators, for plan display; leaves return ()."""
        return ()

    def name(self) -> str:
        """Short display name used by :func:`explain`."""
        return type(self).__name__

    def collect(self, ctx: ExecutionContext) -> list[Row]:
        """Run to completion and materialize all output rows."""
        out: list[Row] = []
        for batch in self.batches(ctx):
            out.extend(batch.to_rows() if isinstance(batch, Chunk) else batch)
        return out


def explain(op: Operator, depth: int = 0) -> str:
    """Render an operator tree as an indented single-string plan."""
    lines = ["  " * depth + f"-> {op.name()}"]
    for child in op.children():
        lines.append(explain(child, depth + 1))
    return "\n".join(lines)
