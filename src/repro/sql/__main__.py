"""``python -m repro.sql`` — the interactive SQL shell."""

import sys

from repro.sql.repl import main

if __name__ == "__main__":
    sys.exit(main())
