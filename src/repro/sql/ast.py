"""The typed AST the parser produces and the binder consumes.

Nodes are deliberately *syntactic*: column references are unresolved
names, literals keep their parsed Python values, and boolean structure
mirrors the source text.  All semantic work — name resolution against the
database catalog, lowering to :class:`~repro.optimizer.logical.QuerySpec`
and :class:`~repro.exec.expressions.Predicate` objects — happens in the
binder, so parse errors and binding errors report through the same
position plumbing but never mix concerns.

Every node carries ``(line, column)`` so the binder can annotate its own
errors ("unknown column") with the position of the reference, not just
the statement.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Node:
    """Base: every AST node knows where it came from.

    The position field is ``col`` (not ``column``) so subclasses holding
    a SQL column reference can use the natural name without colliding
    with the inherited dataclass field.
    """

    line: int
    col: int


# -- value expressions ------------------------------------------------------

@dataclass(frozen=True)
class Literal(Node):
    """A number, string, or DATE literal (already converted to days)."""

    value: object


@dataclass(frozen=True)
class ColumnRef(Node):
    """A possibly table-qualified column name."""

    name: str
    table: str | None = None

    @property
    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class ParamRef(Node):
    """A bind parameter: ``?`` (positional) or ``:name`` (named).

    ``index`` is the 0-based position in statement order — the slot the
    executed value lands in.  Named parameters may repeat; each mention
    is its own ``ParamRef`` (own index), sharing the name.
    """

    index: int
    name: str | None = None

    @property
    def display(self) -> str:
        return f":{self.name}" if self.name else "?"


@dataclass(frozen=True)
class Star(Node):
    """``*`` — in a select list or ``count(*)``."""


@dataclass(frozen=True)
class Arith(Node):
    """Binary arithmetic: ``left <op> right`` with op in ``+ - * /``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Negate(Node):
    """Unary minus."""

    operand: "Expr"


@dataclass(frozen=True)
class FuncCall(Node):
    """An aggregate call: ``sum/avg/count/min/max(expr | *)``."""

    func: str
    arg: "Expr | Star"


@dataclass(frozen=True)
class Case(Node):
    """``CASE WHEN <bool> THEN <expr> ELSE <expr> END`` (single branch)."""

    condition: "BoolExpr"
    then: "Expr"
    otherwise: "Expr"


Expr = Literal | ColumnRef | ParamRef | Arith | Negate | FuncCall | Case


# -- boolean expressions ----------------------------------------------------

@dataclass(frozen=True)
class Compare(Node):
    """``left <op> right`` with op in ``= != < <= > >=``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BetweenExpr(Node):
    """``operand [NOT] BETWEEN lo AND hi`` (SQL: both ends inclusive)."""

    operand: Expr
    lo: Expr
    hi: Expr
    negated: bool = False


@dataclass(frozen=True)
class InExpr(Node):
    """``operand [NOT] IN (literal, ...)``."""

    operand: Expr
    values: tuple[object, ...]
    negated: bool = False


@dataclass(frozen=True)
class LikeExpr(Node):
    """``operand [NOT] LIKE 'pattern'``."""

    operand: Expr
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class ExistsExpr(Node):
    """``[NOT] EXISTS (SELECT ...)`` — becomes a semi/anti join."""

    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class AndExpr(Node):
    parts: tuple["BoolExpr", ...]


@dataclass(frozen=True)
class OrExpr(Node):
    parts: tuple["BoolExpr", ...]


@dataclass(frozen=True)
class NotExpr(Node):
    part: "BoolExpr"


BoolExpr = (Compare | BetweenExpr | InExpr | LikeExpr | ExistsExpr
            | AndExpr | OrExpr | NotExpr)


# -- statement structure ----------------------------------------------------

@dataclass(frozen=True)
class SelectItem(Node):
    """One select-list entry: an expression with an optional alias."""

    expr: Expr | Star
    alias: str | None = None


@dataclass(frozen=True)
class JoinClause(Node):
    """``<kind> JOIN table ON left = right`` (equi-joins only)."""

    kind: str            # inner | left | semi | anti
    table: str
    on_left: ColumnRef
    on_right: ColumnRef


@dataclass(frozen=True)
class OrderKey(Node):
    """One ORDER BY key with direction."""

    column: ColumnRef
    ascending: bool = True


@dataclass(frozen=True)
class Hint(Node):
    """One planner hint from a ``/*+ ... */`` comment, e.g.
    ``force_path(smooth)`` parsed as name + args."""

    name: str
    args: tuple[str, ...] = ()


@dataclass(frozen=True)
class Select(Node):
    """A full (possibly EXPLAIN-prefixed) SELECT statement.

    ``params`` lists every bind parameter of the whole statement
    (subqueries included) in source order — only the *top-level* Select
    carries it, filled in by the parser once the statement is complete.
    ``limit`` may itself be a :class:`ParamRef` (``LIMIT ?``).
    """

    items: tuple[SelectItem, ...]
    table: str
    joins: tuple[JoinClause, ...] = ()
    where: BoolExpr | None = None
    group_by: tuple[ColumnRef, ...] = ()
    order_by: tuple[OrderKey, ...] = ()
    limit: "int | ParamRef | None" = None
    hints: tuple[Hint, ...] = ()
    explain: bool = False
    params: tuple[ParamRef, ...] = ()
