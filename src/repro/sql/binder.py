"""Name resolution and lowering: AST → :class:`QuerySpec` + planner hints.

The binder is where SQL meets the engine's catalog.  It resolves every
table and column reference against :attr:`Database.tables` (unknown names
raise position-annotated errors that *list the known names*), lowers the
WHERE tree onto the existing :mod:`~repro.exec.expressions` predicate
classes, turns ``EXISTS`` / ``NOT EXISTS`` subqueries into semi/anti
:class:`~repro.optimizer.logical.JoinSpec` entries, compiles computed
select items into aggregate ``value`` callables and post-aggregation
:class:`~repro.optimizer.logical.MapSpec` projections, and maps planner
hints onto :class:`~repro.optimizer.planner.PlannerOptions`.

Two canonicalizations make SQL and the fluent API *measurement-identical*
rather than merely result-identical:

* a lower and an upper bound on the same column (``x >= a AND x < b``)
  merge into one :class:`~repro.exec.expressions.Between` — the form the
  selectivity estimator treats as a single range instead of an AVI
  product of two half-ranges;
* select lists that spell out exactly the natural aggregate output
  (group keys, then aggregates) add no trailing projection, matching
  what the fluent builder produces when ``select()`` is never called.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.errors import SqlError, StorageError
from repro.exec.aggregates import AggSpec, aggregate_output_columns
from repro.exec.expressions import (
    Between,
    ColumnComparison,
    CompareOp,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    StringMatch,
    TruePredicate,
    conjunction,
)
from repro.optimizer.logical import JoinSpec, MapSpec, OrderItem, QuerySpec
from repro.optimizer.params import (
    ParamBox,
    ParamMarker,
    predicate_markers,
    resolve_params,
    substitute_spec,
)
from repro.optimizer.planner import FORCEABLE_PATHS, PlannerOptions
from repro.sql import ast
from repro.sql.lexer import error_at, normalize_statement
from repro.storage.types import Column, ColumnType, Row, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database import Database

_COMPARE_OPS = {
    "=": CompareOp.EQ, "!=": CompareOp.NE, "<": CompareOp.LT,
    "<=": CompareOp.LE, ">": CompareOp.GT, ">=": CompareOp.GE,
}
_FLIPPED = {
    CompareOp.EQ: CompareOp.EQ, CompareOp.NE: CompareOp.NE,
    CompareOp.LT: CompareOp.GT, CompareOp.LE: CompareOp.GE,
    CompareOp.GT: CompareOp.LT, CompareOp.GE: CompareOp.LE,
}
_ARITH = {"+": operator.add, "-": operator.sub,
          "*": operator.mul, "/": operator.truediv}

try:  # pragma: no cover - exercised implicitly when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: int64 -> float64 conversion is exact below this, so numpy's
#: convert-then-divide matches Python's correctly-rounded int division.
_SAFE_DIV = 2 ** 53
_INT64_MAX = 2 ** 63


def _abs_bound(v) -> int:
    """An upper bound on |v| as an exact Python int (arrays or scalars)."""
    if isinstance(v, _np.ndarray):
        if not len(v):
            return 0
        return max(int(v.max()), -int(v.min()))
    return abs(v)


def _vec_neg(a):
    """Exact columnar negation; None on fallback."""
    if a is None:
        return None
    if isinstance(a, _np.ndarray) and a.dtype == _np.int64 \
            and len(a) and int(a.min()) == -_INT64_MAX:
        return None  # -int64.min would wrap silently
    return -a


def _vec_arith(op: str, a, b):
    """Columnar ``a op b`` that is bitwise equal to the Python row op.

    Operands are float64/int64 ndarrays or exact Python scalars; returns
    None whenever numpy semantics could diverge from Python's — int64
    overflow (Python ints are unbounded), large-int division (Python
    divides exactly before rounding), or division by zero (Python raises,
    numpy yields inf) — so the caller can fall back to the row path.
    """
    if a is None or b is None:
        return None
    a_arr = isinstance(a, _np.ndarray)
    b_arr = isinstance(b, _np.ndarray)
    if not a_arr and not b_arr:
        return _ARITH[op](a, b)  # pure Python: exact by definition
    a_int = a.dtype == _np.int64 if a_arr else type(a) is int
    b_int = b.dtype == _np.int64 if b_arr else type(b) is int
    if a_int and b_int:
        am, bm = _abs_bound(a), _abs_bound(b)
        if op == "/":
            if am >= _SAFE_DIV or bm >= _SAFE_DIV:
                return None
        elif op == "*":
            if am * bm >= _INT64_MAX:
                return None
        elif am + bm >= _INT64_MAX:
            return None
    if op == "/":
        if (b_arr and bool((b == 0).any())) or (not b_arr and b == 0):
            return None  # let the row path raise ZeroDivisionError
    try:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        return _np.true_divide(a, b)
    except OverflowError:  # a Python scalar outside the array dtype
        return None


def _vec_as_array(v, n: int):
    """Broadcast a scalar vector result to a length-``n`` array."""
    if v is None or isinstance(v, _np.ndarray):
        return v
    if type(v) is int:
        try:
            return _np.full(n, v, dtype=_np.int64)
        except OverflowError:
            return None
    if type(v) is float:
        return _np.full(n, v, dtype=_np.float64)
    return None

#: Hints the binder understands, with the PlannerOptions field each sets.
VALID_HINTS = ("force_path", "no_inlj", "no_index", "no_sort_scan", "smooth")


@dataclass(frozen=True)
class BoundStatement:
    """A bound SQL statement: the logical spec plus hint-derived options.

    When the statement used ``?`` / ``:name`` placeholders the spec is
    *parameterized* — predicates and LIMIT carry
    :class:`~repro.optimizer.params.ParamMarker` slots — and
    :meth:`bind_params` produces the concrete spec for one execution.
    ``normalized`` is the whitespace/comment-insensitive statement text
    the plan cache keys on.
    """

    spec: QuerySpec
    explain: bool
    hint_options: PlannerOptions | None
    normalized: str = ""
    param_names: tuple[str | None, ...] = ()
    param_box: ParamBox | None = None
    #: Slots feeding sum()/avg() arguments: a string there would only
    #: surface as a raw TypeError deep inside the aggregate, so these
    #: are checked when values arrive (the literal twin is rejected at
    #: bind time by _check_agg_input).
    numeric_params: frozenset[int] = frozenset()

    @property
    def param_count(self) -> int:
        """How many bind parameters the statement declares."""
        return len(self.param_names)

    def bind_params(self, params: object = None) -> QuerySpec:
        """The concrete spec for one execution.

        Validates and orders ``params`` (a sequence for ``?`` style, a
        mapping for ``:name`` style), fills the compiled-callable slots,
        and substitutes every structural marker — without re-lexing,
        re-parsing or re-binding the statement.
        """
        values = resolve_params(self.param_names, params)
        for i in sorted(self.numeric_params):
            value = values[i]
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                name = self.param_names[i]
                label = f":{name}" if name else f"parameter {i + 1}"
                raise SqlError(
                    f"{label} is an argument of sum()/avg() and must "
                    f"be numeric, got {value!r}"
                )
        if self.param_box is not None:
            self.param_box.values = values
        return substitute_spec(self.spec, values)

    def planner_options(
            self, base: PlannerOptions | None = None) -> PlannerOptions | None:
        """Layer the statement's hints over ``base`` options.

        Hints override only the fields they name, so ``mode_options`` +
        a ``force_path`` hint composes the way users expect.
        """
        if self.hint_options is None:
            return base
        if base is None:
            return self.hint_options
        merged = replace(base)
        h = self.hint_options
        if h.force_path is not None:
            merged.force_path = h.force_path
        if not h.enable_inlj:
            merged.enable_inlj = False
        if not h.enable_index:
            merged.enable_index = False
        if not h.enable_sort_scan:
            merged.enable_sort_scan = False
        if h.enable_smooth:
            merged.enable_smooth = True
        return merged


class Binder:
    """Binds one parsed statement against one database's catalog."""

    def __init__(self, db: "Database", text: str = ""):
        self.db = db
        self.text = text
        # Parameter slots shared by every compiled value callable of the
        # statement being bound; bind_params() fills it per execution.
        self._box = ParamBox()
        self._numeric_params: set[int] = set()

    # -- error helpers ------------------------------------------------------

    def _error(self, message: str, node: ast.Node) -> SqlError:
        if self.text:
            return error_at(message, self.text, node.line, node.col)
        return SqlError(message)

    def _unknown_table(self, name: str, node: ast.Node) -> SqlError:
        known = ", ".join(sorted(self.db.tables)) or "(no tables loaded)"
        return self._error(
            f"unknown table {name!r}; known tables: {known}", node
        )

    def _unknown_column(self, ref: ast.ColumnRef,
                        scope: list[tuple[str, Schema]]) -> SqlError:
        known = "; ".join(
            f"{name}({', '.join(schema.column_names)})"
            for name, schema in scope
        )
        return self._error(
            f"unknown column {ref.display!r}; known columns: {known}", ref
        )

    # -- public entry point --------------------------------------------------

    def bind(self, select: ast.Select) -> BoundStatement:
        base = self._table(select.table, select)
        scope: list[tuple[str, Schema]] = [(base.name, base.schema)]
        joins: list[JoinSpec] = []
        visible: list[tuple[str, Schema]] = [(base.name, base.schema)]

        for clause in select.joins:
            spec = self._bind_join(clause, scope, visible)
            joins.append(spec)

        conjuncts: list[Predicate] = []
        if select.where is not None:
            # WHERE conjuncts resolve against the FROM-clause scope only
            # (EXISTS subquery tables never leak out), so acceptance does
            # not depend on the order conjuncts are written in.
            where_scope = list(scope)
            for part in _flatten_and(select.where):
                exists = self._as_exists(part)
                if exists is not None:
                    join_spec, pushed = self._bind_exists(
                        exists, scope, where_scope
                    )
                    joins.append(join_spec)
                    conjuncts.extend(pushed)
                else:
                    conjuncts.append(self._lower_bool(part, where_scope))
        predicate = conjunction(_merge_ranges(conjuncts))

        group_names = tuple(
            self._resolve(ref, visible) for ref in select.group_by
        )
        try:
            aggregates, select_cols, maps = self._bind_items(
                select, visible, group_names
            )
        except StorageError as exc:
            # Backstop: schema construction rejects residual name
            # collisions (e.g. a generated aggregate name colliding
            # with an alias); re-raise inside the SqlError family.
            raise self._error(f"invalid select list: {exc}",
                              select) from None
        order_by = self._bind_order(select, visible, group_names,
                                    aggregates, maps)

        limit: object = select.limit
        if isinstance(limit, ast.ParamRef):
            limit = ParamMarker(limit.index, limit.name)
        spec = QuerySpec(
            table=base.name,
            predicate=predicate,
            joins=tuple(joins),
            group_by=group_names,
            aggregates=aggregates,
            select=select_cols,
            maps=maps,
            order_by=order_by,
            limit=limit,  # type: ignore[arg-type]
        )
        return BoundStatement(
            spec=spec,
            explain=select.explain,
            hint_options=self._bind_hints(select.hints),
            normalized=normalize_statement(self.text) if self.text else "",
            param_names=tuple(p.name for p in select.params),
            param_box=self._box,
            numeric_params=frozenset(self._numeric_params),
        )

    # -- tables and joins -----------------------------------------------------

    def _table(self, name: str, node: ast.Node):
        table = self.db.tables.get(name)
        if table is None:
            raise self._unknown_table(name, node)
        return table

    def _bind_join(self, clause: ast.JoinClause,
                   scope: list[tuple[str, Schema]],
                   visible: list[tuple[str, Schema]]) -> JoinSpec:
        inner = self._table(clause.table, clause)
        if any(name == inner.name for name, _ in scope):
            raise self._error(
                f"table {inner.name!r} is referenced twice (self-joins "
                "are not supported)", clause,
            )
        left_key, right_key = self._orient_join_keys(
            clause.on_left, clause.on_right, inner.name, inner.schema, scope
        )
        scope.append((inner.name, inner.schema))
        if clause.kind in ("inner", "left"):
            visible.append((inner.name, inner.schema))
        return JoinSpec(table=inner.name, left_key=left_key,
                        right_key=right_key, how=clause.kind)

    def _orient_join_keys(self, a: ast.ColumnRef, b: ast.ColumnRef,
                          inner_name: str, inner_schema: Schema,
                          scope: list[tuple[str, Schema]]
                          ) -> tuple[str, str]:
        """Decide which ON side names the new table's column."""
        def side(ref: ast.ColumnRef) -> str:
            if ref.table is not None:
                if ref.table == inner_name:
                    if not inner_schema.has_column(ref.name):
                        raise self._unknown_column(
                            ref, [(inner_name, inner_schema)])
                    return "inner"
                self._resolve(ref, scope)
                return "outer"
            in_inner = inner_schema.has_column(ref.name)
            in_scope = any(s.has_column(ref.name) for _, s in scope)
            if in_inner and in_scope:
                raise self._error(
                    f"join key {ref.name!r} exists on both sides; "
                    f"qualify it as {inner_name}.{ref.name} or "
                    "<outer_table>.<column>", ref,
                )
            if in_inner:
                return "inner"
            if in_scope:
                return "outer"
            raise self._unknown_column(
                ref, scope + [(inner_name, inner_schema)])

        sides = (side(a), side(b))
        if sides == ("outer", "inner"):
            return a.name, b.name
        if sides == ("inner", "outer"):
            return b.name, a.name
        raise self._error(
            "join ON must compare one column of the joined table with "
            "one column already in scope", a,
        )

    # -- EXISTS --------------------------------------------------------------

    def _as_exists(self, part: ast.BoolExpr) -> ast.ExistsExpr | None:
        if isinstance(part, ast.ExistsExpr):
            return part
        if isinstance(part, ast.NotExpr) and isinstance(
                part.part, ast.ExistsExpr):
            inner = part.part
            return ast.ExistsExpr(part.line, part.col, inner.subquery,
                                  negated=not inner.negated)
        return None

    def _bind_exists(self, exists: ast.ExistsExpr,
                     scope: list[tuple[str, Schema]],
                     where_scope: list[tuple[str, Schema]]
                     ) -> tuple[JoinSpec, list[Predicate]]:
        """Lower ``[NOT] EXISTS (SELECT ...)`` to a semi/anti join.

        The subquery must reference a single table; its WHERE needs
        exactly one correlated equality (inner column = outer column
        resolved against ``where_scope``, the FROM-clause tables);
        every other conjunct must touch only the inner table and is
        pushed into the main predicate, which the planner then pushes
        below the semi/anti join — EXISTS semantics by construction.
        ``scope`` tracks every referenced table for duplicate detection.
        """
        sub = exists.subquery
        if sub.joins or sub.group_by or sub.order_by or sub.limit is not None:
            raise self._error(
                "EXISTS subqueries support a single table with a WHERE "
                "clause only", sub,
            )
        inner = self._table(sub.table, sub)
        if any(name == inner.name for name, _ in scope):
            raise self._error(
                f"table {inner.name!r} is referenced twice (self-joins "
                "are not supported)", sub,
            )
        if sub.where is None:
            raise self._error(
                "EXISTS subqueries need a correlated equality in WHERE "
                "(e.g. t.key = outer_key)", sub,
            )
        inner_scope = [(inner.name, inner.schema)]
        # EXISTS ignores its select list, but typos there still deserve
        # the front end's diagnostics: only *, literals and resolvable
        # inner columns are accepted.
        for item in sub.items:
            if isinstance(item.expr, ast.ColumnRef):
                self._resolve(item.expr, inner_scope)
            elif not isinstance(item.expr, (ast.Star, ast.Literal)):
                raise self._error(
                    "EXISTS select lists support '*', literals and "
                    "columns of the subquery table", item,
                )
        correlation: tuple[str, str] | None = None
        pushed: list[Predicate] = []
        for part in _flatten_and(sub.where):
            link = self._correlation_of(part, inner.name, inner.schema,
                                        where_scope)
            if link is not None:
                if correlation is not None:
                    raise self._error(
                        "EXISTS subqueries support exactly one correlated "
                        "equality", part,
                    )
                correlation = link
                continue
            lowered = self._lower_bool(part, inner_scope)
            # Pushed conjuncts travel by bare column name and the planner
            # resolves shared names to the *visible* owner — which would
            # silently re-aim this filter at an outer table.  Refuse the
            # ambiguity instead of executing the wrong query.
            clash = sorted(
                c for c in lowered.columns()
                if any(s.has_column(c) for _, s in where_scope)
            )
            if clash:
                raise self._error(
                    f"columns {clash} inside EXISTS also exist on an "
                    "outer table; rename columns to disambiguate", part,
                )
            pushed.append(lowered)
        if correlation is None:
            raise self._error(
                "EXISTS subqueries need a correlated equality in WHERE "
                "(e.g. t.key = outer_key)", sub,
            )
        outer_key, inner_key = correlation
        if not inner.schema.has_column(inner_key):
            raise self._unknown_column(
                ast.ColumnRef(sub.line, sub.col, inner_key),
                [(inner.name, inner.schema)],
            )
        if not any(s.has_column(outer_key) for _, s in where_scope):
            raise self._unknown_column(
                ast.ColumnRef(sub.line, sub.col, outer_key), where_scope
            )
        how = "anti" if exists.negated else "semi"
        join = JoinSpec(table=inner.name, left_key=outer_key,
                        right_key=inner_key, how=how)
        scope.append((inner.name, inner.schema))
        return join, pushed

    def _correlation_of(self, part: ast.BoolExpr, inner_name: str,
                        inner_schema: Schema,
                        outer_scope: list[tuple[str, Schema]]
                        ) -> tuple[str, str] | None:
        """``(outer_key, inner_key)`` if ``part`` correlates the scopes."""
        if not (isinstance(part, ast.Compare) and part.op == "="
                and isinstance(part.left, ast.ColumnRef)
                and isinstance(part.right, ast.ColumnRef)):
            return None

        def locate(ref: ast.ColumnRef) -> str | None:
            if ref.table is not None:
                if any(n == ref.table for n, _ in outer_scope):
                    return "outer"
                if ref.table == inner_name:
                    return "inner"
                # Unknown qualifier: not a correlation — the conjunct
                # falls through to pushdown lowering, which raises the
                # position-annotated unknown-table error.
                return None
            in_inner = inner_schema.has_column(ref.name)
            in_outer = any(s.has_column(ref.name) for _, s in outer_scope)
            if in_inner and not in_outer:
                return "inner"
            if in_outer and not in_inner:
                return "outer"
            return None  # ambiguous or unknown: not a correlation

        sides = (locate(part.left), locate(part.right))
        if sides == ("outer", "inner"):
            return part.left.name, part.right.name
        if sides == ("inner", "outer"):
            return part.right.name, part.left.name
        return None

    # -- name resolution ------------------------------------------------------

    def _resolve(self, ref: ast.ColumnRef,
                 scope: list[tuple[str, Schema]]) -> str:
        """Resolve a column reference to its engine (unqualified) name."""
        if ref.table is not None:
            for name, schema in scope:
                if name == ref.table:
                    if not schema.has_column(ref.name):
                        raise self._unknown_column(ref, [(name, schema)])
                    # Lowered predicates carry bare names, so a qualifier
                    # cannot survive to execution; if another referenced
                    # table shares the name, the planner would re-aim the
                    # predicate at whichever owner is visible.  Refuse.
                    others = [n for n, s in scope
                              if n != name and s.has_column(ref.name)]
                    if others:
                        raise self._error(
                            f"column {ref.name!r} exists in several "
                            f"referenced tables ({[name] + others}) and "
                            "predicates are name-based; rename columns "
                            "to disambiguate", ref,
                        )
                    return ref.name
            raise self._unknown_table(ref.table, ref)
        owners = [name for name, schema in scope
                  if schema.has_column(ref.name)]
        if not owners:
            raise self._unknown_column(ref, scope)
        if len(owners) > 1:
            raise self._error(
                f"column {ref.name!r} is ambiguous (in tables "
                f"{owners}); qualify it as <table>.{ref.name}", ref,
            )
        return ref.name

    # -- WHERE lowering -------------------------------------------------------

    def _lower_bool(self, expr: ast.BoolExpr,
                    scope: list[tuple[str, Schema]]) -> Predicate:
        if isinstance(expr, ast.AndExpr):
            return conjunction(
                [self._lower_bool(p, scope) for p in expr.parts]
            )
        if isinstance(expr, ast.OrExpr):
            return Or([self._lower_bool(p, scope) for p in expr.parts])
        if isinstance(expr, ast.NotExpr):
            return Not(self._lower_bool(expr.part, scope))
        if isinstance(expr, ast.ExistsExpr):
            raise self._error(
                "EXISTS is only supported as a top-level WHERE conjunct "
                "(not nested under OR/NOT)", expr,
            )
        if isinstance(expr, ast.Compare):
            return self._lower_compare(expr, scope)
        if isinstance(expr, ast.BetweenExpr):
            column = self._operand_column(expr.operand, scope)
            lo = self._literal(expr.lo)
            hi = self._literal(expr.hi)
            between = Between(column, lo, hi,
                              lo_inclusive=True, hi_inclusive=True)
            return Not(between) if expr.negated else between
        if isinstance(expr, ast.InExpr):
            column = self._operand_column(expr.operand, scope)
            in_list = InList(column, tuple(
                ParamMarker(v.index, v.name)
                if isinstance(v, ast.ParamRef) else v
                for v in expr.values
            ))
            return Not(in_list) if expr.negated else in_list
        if isinstance(expr, ast.LikeExpr):
            return self._lower_like(expr, scope)
        raise self._error("unsupported WHERE expression", expr)

    def _lower_compare(self, expr: ast.Compare,
                       scope: list[tuple[str, Schema]]) -> Predicate:
        op = _COMPARE_OPS[expr.op]
        left, right = expr.left, expr.right
        constant = (ast.Literal, ast.ParamRef)
        if isinstance(left, ast.ColumnRef) and isinstance(
                right, ast.ColumnRef):
            return ColumnComparison(self._resolve(left, scope), op,
                                    self._resolve(right, scope))
        if isinstance(left, ast.ColumnRef) and isinstance(right, constant):
            return Comparison(self._resolve(left, scope), op,
                              self._constant_of(right))
        if isinstance(left, constant) and isinstance(right, ast.ColumnRef):
            return Comparison(self._resolve(right, scope), _FLIPPED[op],
                              self._constant_of(left))
        if isinstance(left, constant) and isinstance(right, constant):
            raise self._error(
                "comparison of two literals is not supported", expr
            )
        raise self._error(
            "WHERE comparisons support column-vs-literal and "
            "column-vs-column only (no arithmetic or aggregates)", expr,
        )

    def _lower_like(self, expr: ast.LikeExpr,
                    scope: list[tuple[str, Schema]]) -> Predicate:
        column = self._operand_column(expr.operand, scope)
        for _name, schema in scope:
            if schema.has_column(column):
                ctype = schema.columns[schema.index_of(column)].ctype
                if ctype is not ColumnType.CHAR:
                    raise self._error(
                        f"LIKE needs a string column; {column!r} is "
                        f"{ctype.value}", expr,
                    )
                break
        pattern = expr.pattern
        inner = pattern.strip("%")
        if pattern and not inner and "_" not in pattern:
            # LIKE '%' (any run of percents): matches every value.
            true: Predicate = TruePredicate()
            return Not(true) if expr.negated else true
        if "%" in inner or "_" in pattern:
            raise self._error(
                f"unsupported LIKE pattern {pattern!r}; only 'x%', "
                "'%x', '%x%' and literal matches are supported", expr,
            )
        pred: Predicate
        if pattern.startswith("%") and pattern.endswith("%") and inner:
            pred = StringMatch(column, "contains", inner)
        elif pattern.endswith("%") and len(pattern) > 1:
            pred = StringMatch(column, "prefix", inner)
        elif pattern.startswith("%") and len(pattern) > 1:
            pred = StringMatch(column, "suffix", inner)
        else:
            pred = Comparison(column, CompareOp.EQ, pattern)
        return Not(pred) if expr.negated else pred

    def _operand_column(self, operand: ast.Expr,
                        scope: list[tuple[str, Schema]]) -> str:
        if not isinstance(operand, ast.ColumnRef):
            raise self._error(
                "this predicate form needs a plain column on its left "
                "side", operand,
            )
        return self._resolve(operand, scope)

    def _literal(self, expr: ast.Expr) -> object:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ParamRef):
            return ParamMarker(expr.index, expr.name)
        raise self._error("expected a literal value or parameter", expr)

    def _constant_of(self, expr: "ast.Literal | ast.ParamRef") -> object:
        """The predicate-side value of a literal or parameter node."""
        if isinstance(expr, ast.ParamRef):
            return ParamMarker(expr.index, expr.name)
        return expr.value

    # -- select list ----------------------------------------------------------

    def _bind_items(self, select: ast.Select,
                    visible: list[tuple[str, Schema]],
                    group_names: tuple[str, ...]
                    ) -> tuple[tuple[AggSpec, ...], tuple[str, ...],
                               tuple[MapSpec, ...]]:
        """Lower the select list; returns (aggregates, select, maps)."""
        has_aggs = bool(group_names) or any(
            _contains_func(item.expr) for item in select.items
        )
        if not has_aggs:
            return (), self._bind_plain_items(select, visible), ()
        return self._bind_aggregate_items(select, visible, group_names)

    def _bind_plain_items(self, select: ast.Select,
                          visible: list[tuple[str, Schema]]
                          ) -> tuple[str, ...]:
        names: list[str] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                if len(select.items) > 1:
                    raise self._error(
                        "'*' cannot be combined with other select items",
                        item,
                    )
                return ()
            if not isinstance(item.expr, ast.ColumnRef):
                raise self._error(
                    "computed select items are only supported together "
                    "with aggregation", item,
                )
            name = self._resolve(item.expr, visible)
            if item.alias is not None and item.alias != name:
                raise self._error(
                    f"column aliases ({name!r} AS {item.alias!r}) are "
                    "not supported outside aggregation", item,
                )
            if name in names:
                raise self._error(
                    f"duplicate select column {name!r}", item
                )
            names.append(name)
        return tuple(names)

    def _bind_aggregate_items(self, select: ast.Select,
                              visible: list[tuple[str, Schema]],
                              group_names: tuple[str, ...]
                              ) -> tuple[tuple[AggSpec, ...],
                                         tuple[str, ...],
                                         tuple[MapSpec, ...]]:
        input_schema = _joined_schema(visible)
        aggs: list[AggSpec] = []
        # Each bound item: ("group", name) | ("agg", output) |
        # ("computed", name, expr-with-agg-refs)
        bound: list[tuple] = []
        for item in select.items:
            expr = item.expr
            if isinstance(expr, ast.Star):
                raise self._error(
                    "'*' cannot be combined with GROUP BY/aggregates "
                    "(name the group keys and aggregates explicitly)",
                    item,
                )
            if isinstance(expr, ast.ColumnRef):
                name = self._resolve(expr, visible)
                if name not in group_names:
                    raise self._error(
                        f"column {name!r} must appear in GROUP BY or "
                        "inside an aggregate", expr,
                    )
                if item.alias is not None and item.alias != name:
                    raise self._error(
                        "group keys cannot be aliased", item
                    )
                self._check_dup_output(name, bound, expr)
                bound.append(("group", name))
                continue
            if isinstance(expr, ast.FuncCall):
                spec = self._agg_spec(expr, item.alias, input_schema,
                                      visible, len(aggs))
                self._check_dup_output(spec.output, bound, item)
                aggs.append(spec)
                bound.append(("agg", spec.output))
                continue
            # Composite: arithmetic/CASE over aggregates and group keys.
            rewritten = self._extract_aggs(expr, input_schema, visible, aggs)
            name = item.alias or f"expr_{len(bound)}"
            self._check_dup_output(name, bound, item)
            bound.append(("computed", name, rewritten))

        agg_schema = _aggregate_schema(input_schema, group_names, aggs)
        natural = list(group_names) + [a.output for a in aggs]
        item_names = [b[1] for b in bound]

        if all(b[0] != "computed" for b in bound):
            if item_names == natural:
                return tuple(aggs), (), ()
            return tuple(aggs), tuple(item_names), ()

        # At least one computed item: everything goes through one map.
        agg_scope = [("", agg_schema)]
        getters: list[Callable[[Row], object]] = []
        vec_cols: list = []
        columns: list[Column] = []
        for entry in bound:
            if entry[0] in ("group", "agg"):
                pos = agg_schema.index_of(entry[1])
                getters.append(lambda r, _p=pos: r[_p])
                vec_cols.append(lambda chunk, _p=pos: chunk.data_column(_p))
                columns.append(agg_schema.columns[pos])
            else:
                fn, ctype = self._compile_value(entry[2], agg_scope)
                getters.append(fn)
                vec_cols.append(
                    self._compile_vector_array(entry[2], agg_scope)
                )
                columns.append(Column(entry[1], ctype))
        if len(getters) == 1:
            only = getters[0]
            map_fn: Callable[[Row], Row] = lambda r: (only(r),)  # noqa: E731
        else:
            fns = tuple(getters)
            map_fn = lambda r: tuple(f(r) for f in fns)  # noqa: E731
        map_vec = None
        if all(v is not None for v in vec_cols):
            # All-or-nothing: one row-path column would force rowifying
            # the chunk anyway, losing the point of the columnar map.
            col_fns = tuple(vec_cols)

            def map_vec(chunk, _fns=col_fns):
                out = []
                for f in _fns:
                    col = f(chunk)
                    if col is None:
                        return None
                    out.append(col)
                return out
        maps = (MapSpec(Schema(columns), map_fn, vector=map_vec),)
        return tuple(aggs), (), maps

    def _check_dup_output(self, name: str, bound: list[tuple],
                          node: ast.Node) -> None:
        if any(entry[1] == name for entry in bound):
            raise self._error(
                f"duplicate output column {name!r}; use AS to rename",
                node,
            )

    def _agg_spec(self, call: ast.FuncCall, alias: str | None,
                  input_schema: Schema, visible: list[tuple[str, Schema]],
                  ordinal: int) -> AggSpec:
        func = call.func
        if isinstance(call.arg, ast.Star):
            if func != "count":
                raise self._error(
                    f"{func}(*) is not valid; only count(*) takes '*'",
                    call,
                )
            return AggSpec("count", alias or "count")
        if _contains_func(call.arg):
            raise self._error("aggregates cannot be nested", call)
        if isinstance(call.arg, ast.ColumnRef):
            column = self._resolve(call.arg, visible)
            pos = input_schema.index_of(column)
            self._check_agg_input(func, input_schema.columns[pos].ctype,
                                  call)
            return AggSpec(func, alias or f"{func}_{column}", column=column)
        fn, ctype = self._compile_value(call.arg, visible)
        self._check_agg_input(func, ctype, call)
        if func in ("sum", "avg"):
            # Parameters in the argument have no bind-time type; defer
            # the numeric check to bind_params (value arrival).
            self._numeric_params.update(_param_indices(call.arg))
        vector = self._compile_vector_array(call.arg, visible)
        return AggSpec(func, alias or f"{func}_{ordinal}", value=fn,
                       vector=vector)

    def _check_agg_input(self, func: str, ctype: ColumnType,
                         call: ast.FuncCall) -> None:
        """Reject arithmetic aggregates over strings at bind time."""
        if func in ("sum", "avg") and ctype is ColumnType.CHAR:
            raise self._error(
                f"{func}() needs a numeric argument, got a string "
                "column/expression", call,
            )

    def _extract_aggs(self, expr: ast.Expr, input_schema: Schema,
                      visible: list[tuple[str, Schema]],
                      aggs: list[AggSpec]) -> ast.Expr:
        """Replace FuncCall subtrees with refs to freshly-added AggSpecs."""
        if isinstance(expr, ast.FuncCall):
            spec = self._agg_spec(expr, None, input_schema, visible,
                                  len(aggs))
            aggs.append(spec)
            return ast.ColumnRef(expr.line, expr.col, spec.output)
        if isinstance(expr, ast.Arith):
            return ast.Arith(
                expr.line, expr.col, expr.op,
                self._extract_aggs(expr.left, input_schema, visible, aggs),
                self._extract_aggs(expr.right, input_schema, visible, aggs),
            )
        if isinstance(expr, ast.Negate):
            return ast.Negate(
                expr.line, expr.col,
                self._extract_aggs(expr.operand, input_schema, visible,
                                   aggs),
            )
        if isinstance(expr, ast.Case):
            raise self._error(
                "CASE around aggregates is not supported (put CASE "
                "inside the aggregate instead)", expr,
            )
        return expr

    # -- scalar expression compilation ---------------------------------------

    def _compile_value(self, expr: ast.Expr,
                       scope: list[tuple[str, Schema]]
                       ) -> tuple[Callable[[Row], object], ColumnType]:
        """Compile a value expression to ``row -> value`` over ``scope``."""
        schema = _joined_schema(scope)
        if isinstance(expr, ast.Literal):
            value = expr.value
            ctype = (ColumnType.FLOAT if isinstance(value, float)
                     else ColumnType.INT if isinstance(value, int)
                     else ColumnType.CHAR)
            return (lambda row: value), ctype
        if isinstance(expr, ast.ParamRef):
            # Late-bound: the closure reads the statement's parameter
            # slots, so re-executions with new values need no recompile.
            box = self._box
            index = expr.index
            return (lambda row: box.values[index]), ColumnType.FLOAT
        if isinstance(expr, ast.ColumnRef):
            name = self._resolve(expr, scope)
            pos = schema.index_of(name)
            return (lambda row: row[pos]), schema.columns[pos].ctype
        if isinstance(expr, ast.Negate):
            fn, ctype = self._compile_value(expr.operand, scope)
            return (lambda row: -fn(row)), ctype
        if isinstance(expr, ast.Arith):
            left, _lt = self._compile_value(expr.left, scope)
            right, _rt = self._compile_value(expr.right, scope)
            op = _ARITH[expr.op]
            return (lambda row: op(left(row), right(row))), ColumnType.FLOAT
        if isinstance(expr, ast.Case):
            condition = self._lower_bool(expr.condition, scope)
            if predicate_markers(condition):
                # The condition is compiled to a row predicate *now*; a
                # marker would be compared against rows at runtime.
                raise self._error(
                    "parameters inside CASE conditions are not "
                    "supported", expr,
                )
            matches = condition.bind(schema)
            then, t_type = self._compile_value(expr.then, scope)
            otherwise, _o = self._compile_value(expr.otherwise, scope)
            return (
                lambda row: then(row) if matches(row) else otherwise(row)
            ), t_type
        if isinstance(expr, ast.FuncCall):
            raise self._error("aggregates cannot be nested here", expr)
        raise self._error("unsupported expression", expr)

    def _compile_vector(self, expr: ast.Expr,
                        scope: list[tuple[str, Schema]]):
        """Columnar counterpart of :meth:`_compile_value`.

        Compiles to ``chunk -> ndarray | scalar | None``; returns None at
        compile time when the expression shape cannot be vectorized
        (CASE, string literals), while the compiled callable returns None
        at runtime when a batch cannot be handled exactly (object column,
        overflow risk, division by zero).  Callers must never use the
        vector *instead of* checking the row result: it is an exact
        accelerator or absent, nothing in between.
        """
        if _np is None:
            return None
        schema = _joined_schema(scope)
        if isinstance(expr, ast.Literal):
            value = expr.value
            if type(value) not in (int, float):
                return None
            return lambda chunk: value
        if isinstance(expr, ast.ParamRef):
            box = self._box
            index = expr.index

            def from_param(chunk):
                value = box.values[index]
                return value if type(value) in (int, float) else None
            return from_param
        if isinstance(expr, ast.ColumnRef):
            name = self._resolve(expr, scope)
            pos = schema.index_of(name)
            return lambda chunk: chunk.array(pos)
        if isinstance(expr, ast.Negate):
            inner = self._compile_vector(expr.operand, scope)
            if inner is None:
                return None
            return lambda chunk: _vec_neg(inner(chunk))
        if isinstance(expr, ast.Arith):
            left = self._compile_vector(expr.left, scope)
            right = self._compile_vector(expr.right, scope)
            if left is None or right is None:
                return None
            op = expr.op
            return lambda chunk: _vec_arith(op, left(chunk), right(chunk))
        return None  # CASE / FuncCall: row path only

    def _compile_vector_array(self, expr: ast.Expr,
                              scope: list[tuple[str, Schema]]):
        """Like :meth:`_compile_vector`, but always yields an ndarray."""
        inner = self._compile_vector(expr, scope)
        if inner is None:
            return None
        return lambda chunk: _vec_as_array(inner(chunk), len(chunk))

    # -- ORDER BY -------------------------------------------------------------

    def _bind_order(self, select: ast.Select,
                    visible: list[tuple[str, Schema]],
                    group_names: tuple[str, ...],
                    aggregates: tuple[AggSpec, ...],
                    maps: tuple[MapSpec, ...]
                    ) -> tuple[OrderItem, ...]:
        if not select.order_by:
            return ()
        if maps:
            available = set(maps[-1].schema.column_names)
        elif aggregates or group_names:
            available = set(group_names) | {a.output for a in aggregates}
        else:
            available = {
                c for _, schema in visible for c in schema.column_names
            }
        items: list[OrderItem] = []
        for key in select.order_by:
            if key.column.table is not None:
                # A qualifier must name a real table owning the column;
                # it cannot refer to aggregate/map outputs.
                name = self._resolve(key.column, visible)
            else:
                name = key.column.name
            if name not in available:
                raise self._error(
                    f"ORDER BY column {name!r} is not in the query "
                    f"output; available: {', '.join(sorted(available))}",
                    key.column,
                )
            items.append(OrderItem(name, key.ascending))
        return tuple(items)

    # -- hints ----------------------------------------------------------------

    def _bind_hints(self,
                    hints: tuple[ast.Hint, ...]) -> PlannerOptions | None:
        if not hints:
            return None
        options = PlannerOptions()
        for hint in hints:
            if hint.name == "force_path":
                if len(hint.args) != 1 \
                        or hint.args[0] not in FORCEABLE_PATHS:
                    raise self._error(
                        f"force_path takes one of {FORCEABLE_PATHS}, got "
                        f"({', '.join(hint.args) or ''})", hint,
                    )
                options.force_path = hint.args[0]
            elif hint.name == "no_inlj":
                options.enable_inlj = False
            elif hint.name == "no_index":
                options.enable_index = False
            elif hint.name == "no_sort_scan":
                options.enable_sort_scan = False
            elif hint.name == "smooth":
                options.enable_smooth = True
            else:
                raise self._error(
                    f"unknown hint {hint.name!r}; valid hints: "
                    f"{', '.join(VALID_HINTS)}", hint,
                )
        return options


# -- module helpers ----------------------------------------------------------

def _flatten_and(expr: ast.BoolExpr) -> list[ast.BoolExpr]:
    if isinstance(expr, ast.AndExpr):
        out: list[ast.BoolExpr] = []
        for part in expr.parts:
            out.extend(_flatten_and(part))
        return out
    return [expr]


def _param_indices(expr: object) -> set[int]:
    """Slot indices of every ParamRef inside a value expression."""
    if isinstance(expr, ast.ParamRef):
        return {expr.index}
    if isinstance(expr, ast.Arith):
        return _param_indices(expr.left) | _param_indices(expr.right)
    if isinstance(expr, ast.Negate):
        return _param_indices(expr.operand)
    if isinstance(expr, ast.Case):
        return _param_indices(expr.then) | _param_indices(expr.otherwise)
    return set()


def _contains_func(expr: object) -> bool:
    if isinstance(expr, ast.FuncCall):
        return True
    if isinstance(expr, ast.Arith):
        return _contains_func(expr.left) or _contains_func(expr.right)
    if isinstance(expr, ast.Negate):
        return _contains_func(expr.operand)
    if isinstance(expr, ast.Case):
        return _contains_func(expr.then) or _contains_func(expr.otherwise)
    return False


def _joined_schema(scope: list[tuple[str, Schema]]) -> Schema:
    columns: list[Column] = []
    for _, schema in scope:
        columns.extend(schema.columns)
    return Schema(columns)


def _aggregate_schema(input_schema: Schema, group_names: tuple[str, ...],
                      aggs: list[AggSpec]) -> Schema:
    """The output layout of HashAggregate: group keys then aggregates."""
    return Schema(
        aggregate_output_columns(input_schema, group_names, aggs)
    )


def _merge_ranges(conjuncts: list[Predicate]) -> list[Predicate]:
    """Merge one lower + one upper bound per column into a Between.

    ``x >= a AND x < b`` and ``Between(x, a, b)`` are logically equal but
    estimate differently (AVI product of two half-ranges vs. one
    histogram range), which would make SQL plans diverge from fluent
    ones.  Merging is skipped when a column has several bounds on the
    same side — intersecting those is :func:`extract_range`'s job.
    """
    lows: dict[str, list[int]] = {}
    highs: dict[str, list[int]] = {}
    for i, part in enumerate(conjuncts):
        if isinstance(part, Comparison):
            if part.op in (CompareOp.GT, CompareOp.GE):
                lows.setdefault(part.column, []).append(i)
            elif part.op in (CompareOp.LT, CompareOp.LE):
                highs.setdefault(part.column, []).append(i)
    merged: dict[int, Predicate] = {}
    dropped: set[int] = set()
    for column, lo_idx in lows.items():
        hi_idx = highs.get(column, [])
        if len(lo_idx) != 1 or len(hi_idx) != 1:
            continue
        lo: Comparison = conjuncts[lo_idx[0]]  # type: ignore[assignment]
        hi: Comparison = conjuncts[hi_idx[0]]  # type: ignore[assignment]
        first, second = sorted((lo_idx[0], hi_idx[0]))
        merged[first] = Between(
            column, lo.value, hi.value,
            lo_inclusive=lo.op is CompareOp.GE,
            hi_inclusive=hi.op is CompareOp.LE,
        )
        dropped.add(second)
    if not merged:
        return conjuncts
    return [
        merged.get(i, part) for i, part in enumerate(conjuncts)
        if i not in dropped
    ]
