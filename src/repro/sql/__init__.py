"""SQL front end: lexer → parser → binder → :class:`QuerySpec`.

The paper's contract is declarative: users state *what* they want and the
engine picks access paths safely at runtime (§IV-B).  PR 2 built the
planner half; this package adds the textual half, so a statement like::

    SELECT l_returnflag, sum(l_quantity) AS qty
    FROM lineitem
    WHERE l_shipdate <= DATE '1998-09-02'
    GROUP BY l_returnflag

lowers onto the very same :class:`~repro.optimizer.logical.QuerySpec` /
:meth:`~repro.optimizer.planner.Planner.plan_query` path the fluent API
uses — measurement-identically, as the TPC-H tests assert.  Planner
hints ride in comments (``/*+ force_path(smooth) */``, ``/*+ no_inlj */``)
and ``EXPLAIN SELECT ...`` renders the estimated-vs-actual plan tree.

Entry points:

* :func:`compile_statement` — text → :class:`BoundStatement` (spec +
  hint-derived options + explain flag).
* :meth:`repro.database.Database.sql` / ``.explain`` — the one-call
  facade applications use.
* ``python -m repro.sql`` — an interactive REPL over a loaded workload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sql.binder import Binder, BoundStatement, VALID_HINTS
from repro.sql.lexer import Lexer, Token, tokenize
from repro.sql.parser import parse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database import Database

__all__ = [
    "Binder",
    "BoundStatement",
    "Lexer",
    "Token",
    "VALID_HINTS",
    "compile_statement",
    "parse",
    "tokenize",
]


def compile_statement(db: "Database", text: str) -> BoundStatement:
    """Parse and bind one SQL statement against ``db``'s catalog."""
    return Binder(db, text).bind(parse(text))
