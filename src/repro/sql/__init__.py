"""SQL front end: lexer → parser → binder → :class:`QuerySpec`.

The paper's contract is declarative: users state *what* they want and the
engine picks access paths safely at runtime (§IV-B).  PR 2 built the
planner half; this package adds the textual half, so a statement like::

    SELECT l_returnflag, sum(l_quantity) AS qty
    FROM lineitem
    WHERE l_shipdate <= DATE '1998-09-02'
    GROUP BY l_returnflag

lowers onto the very same :class:`~repro.optimizer.logical.QuerySpec` /
:meth:`~repro.optimizer.planner.Planner.plan_query` path the fluent API
uses — measurement-identically, as the TPC-H tests assert.  Planner
hints ride in comments (``/*+ force_path(smooth) */``, ``/*+ no_inlj */``)
and ``EXPLAIN SELECT ...`` renders the estimated-vs-actual plan tree.

Statements may carry bind parameters — ``?`` positional or ``:name``
named — which bind once into a *parameterized* spec and are substituted
per execution (no re-lex/parse/bind), the substrate of the session
layer's prepared statements.

Entry points:

* :func:`compile_statement` — text → :class:`BoundStatement` (spec +
  hint-derived options + explain flag + parameter slots); counted on
  ``db.sql_compile_count``.
* :meth:`repro.database.Database.connect` — the
  Connection/Cursor/PreparedStatement session layer applications use
  (``Database.sql``/``.explain`` remain as deprecated one-call shims).
* ``python -m repro.sql`` — an interactive REPL over a loaded workload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sql.binder import Binder, BoundStatement, VALID_HINTS
from repro.sql.lexer import Lexer, Token, normalize_statement, tokenize
from repro.sql.parser import parse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database import Database

__all__ = [
    "Binder",
    "BoundStatement",
    "Lexer",
    "Token",
    "VALID_HINTS",
    "compile_statement",
    "normalize_statement",
    "parse",
    "tokenize",
]


def compile_statement(db: "Database", text: str) -> BoundStatement:
    """Parse and bind one SQL statement against ``db``'s catalog.

    Every call counts on ``db.sql_compile_count`` — the observable that
    lets tests assert a prepared statement really compiled only once.
    """
    db.sql_compile_count += 1
    return Binder(db, text).bind(parse(text))
