"""Recursive-descent parser for the supported SQL subset.

The grammar (see the README's "SQL interface" table)::

    statement   := [EXPLAIN] SELECT item ("," item)*
                   FROM ident join* [WHERE bool]
                   [GROUP BY column ("," column)*]
                   [ORDER BY column [ASC|DESC] ("," ...)*]
                   [LIMIT number] [";"]
    join        := [INNER | LEFT [OUTER] | SEMI | ANTI] JOIN ident
                   ON column "=" column
    item        := "*" | expr [[AS] ident]
    bool        := or ; or := and (OR and)* ; and := not (AND not)*
    not         := NOT not | predicate
    predicate   := EXISTS "(" statement ")"
                 | expr ( compare-op expr
                        | [NOT] BETWEEN expr AND expr
                        | [NOT] IN "(" literal ("," literal)* ")"
                        | [NOT] LIKE string )
                 | "(" bool ")"
    expr        := term (("+"|"-") term)* ; term := factor (("*"|"/") factor)*
    factor      := ["-"] primary
    primary     := literal | DATE string | column | func "(" (expr|"*") ")"
                 | CASE WHEN bool THEN expr ELSE expr END | "(" expr ")"

Ambiguity between a parenthesised boolean and a parenthesised value
expression is resolved by look-ahead on the token after the matching
structure — the classic trick hand-written SQL parsers use.

Errors carry line/column and a caret; misspelled keywords surface as
"expected keyword X, got identifier 'SELCT'" at the exact spot.
"""

from __future__ import annotations

import dataclasses
import datetime

from repro.errors import SqlError
from repro.sql import ast
from repro.sql.lexer import Token, error_at, tokenize

_COMPARE_OPS = ("=", "!=", "<", "<=", ">", ">=")
_AGG_FUNCS = ("sum", "count", "avg", "min", "max")
_JOIN_KINDS = {"INNER": "inner", "LEFT": "left",
               "SEMI": "semi", "ANTI": "anti"}

#: Days-since-1992-01-01 origin shared with the TPC-H schema helpers.
_DATE_BASE = datetime.date(1992, 1, 1)


def parse(text: str) -> ast.Select:
    """Parse one statement; raises :class:`SqlError` with positions."""
    return _Parser(text).statement()


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.hints: list[ast.Hint] = []
        self.tokens = [t for t in tokenize(text)
                       if not self._capture_hint(t)]
        self.pos = 0
        self.params: list[ast.ParamRef] = []
        self._param_style: str | None = None  # "positional" | "named"

    def _capture_hint(self, token: Token) -> bool:
        """Pull HINT tokens out of the stream, parsing their bodies."""
        if token.kind != "HINT":
            return False
        self.hints.extend(self._parse_hint_body(token))
        return True

    def _parse_hint_body(self, token: Token) -> list[ast.Hint]:
        """Split ``force_path(smooth), no_inlj`` into Hint nodes.

        Hint *names* are validated by the binder (which knows the
        planner's knobs); here only the shape is checked.
        """
        hints: list[ast.Hint] = []
        body = str(token.value)
        for raw in filter(None, (p.strip() for p in body.split(","))):
            name, args = raw, ()
            if "(" in raw:
                if not raw.endswith(")"):
                    raise error_at(
                        f"malformed hint {raw!r} (missing ')')",
                        self.text, token.line, token.column,
                    )
                name, inner = raw[:-1].split("(", 1)
                args = tuple(
                    a.strip() for a in inner.split(",") if a.strip()
                )
            name = name.strip().lower()
            if not name.replace("_", "").isalnum():
                raise error_at(
                    f"malformed hint {raw!r}", self.text,
                    token.line, token.column,
                )
            hints.append(ast.Hint(token.line, token.column, name, args))
        return hints

    # -- token plumbing -----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "EOF":
            self.pos += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.value in words

    def _at_op(self, *ops: str) -> bool:
        token = self._peek()
        return token.kind == "OP" and token.value in ops

    def _accept_keyword(self, *words: str) -> Token | None:
        if self._at_keyword(*words):
            return self._next()
        return None

    def _accept_op(self, *ops: str) -> Token | None:
        if self._at_op(*ops):
            return self._next()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not self._at_keyword(word):
            raise self._error(f"expected keyword {word}, got "
                              f"{token.describe()}", token)
        return self._next()

    def _expect_op(self, op: str) -> Token:
        token = self._peek()
        if not self._at_op(op):
            raise self._error(f"expected {op!r}, got {token.describe()}",
                              token)
        return self._next()

    def _expect_ident(self, what: str) -> Token:
        token = self._peek()
        if token.kind != "IDENT":
            raise self._error(f"expected {what}, got {token.describe()}",
                              token)
        return self._next()

    def _error(self, message: str, token: Token | None = None) -> SqlError:
        token = token or self._peek()
        return error_at(message, self.text, token.line, token.column)

    # -- statement ----------------------------------------------------------

    def statement(self) -> ast.Select:
        explain = self._accept_keyword("EXPLAIN") is not None
        select = self._select(top_level=True)
        self._accept_op(";")
        tail = self._peek()
        if tail.kind != "EOF":
            raise self._error(
                f"unexpected {tail.describe()} after end of statement", tail
            )
        return dataclasses.replace(
            select, explain=explain, params=tuple(self.params)
        )

    def _select(self, top_level: bool = False) -> ast.Select:
        start = self._peek()
        self._expect_keyword("SELECT")
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        self._expect_keyword("FROM")
        table = self._expect_ident("table name").value
        joins: list[ast.JoinClause] = []
        while self._at_keyword("JOIN", "INNER", "LEFT", "SEMI", "ANTI"):
            joins.append(self._join())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._bool_expr()
        group_by: tuple[ast.ColumnRef, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._column_list())
        order_by: list[ast.OrderKey] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                col = self._column_ref()
                ascending = True
                if self._accept_keyword("DESC"):
                    ascending = False
                else:
                    self._accept_keyword("ASC")
                order_by.append(ast.OrderKey(col.line, col.col, col,
                                             ascending))
                if not self._accept_op(","):
                    break
        limit: int | ast.ParamRef | None = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.kind == "PARAM":
                limit = self._param_ref()
            elif token.kind == "NUMBER" and isinstance(token.value, int):
                self._next()
                limit = token.value
            else:
                raise self._error(
                    "LIMIT takes an integer or a parameter, got "
                    f"{token.describe()}", token
                )
        hints = tuple(self.hints) if top_level else ()
        return ast.Select(
            start.line, start.column, tuple(items), str(table),
            tuple(joins), where, group_by, tuple(order_by), limit, hints,
        )

    def _select_item(self) -> ast.SelectItem:
        token = self._peek()
        if self._accept_op("*"):
            return ast.SelectItem(token.line, token.column,
                                  ast.Star(token.line, token.column))
        expr = self._value_expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias").value
        elif self._peek().kind == "IDENT":
            alias = self._next().value
        return ast.SelectItem(token.line, token.column, expr,
                              str(alias) if alias else None)

    def _join(self) -> ast.JoinClause:
        start = self._peek()
        kind = "inner"
        word = self._accept_keyword("INNER", "LEFT", "SEMI", "ANTI")
        if word is not None:
            kind = _JOIN_KINDS[str(word.value)]
            if word.value == "LEFT":
                self._accept_keyword("OUTER")
        self._expect_keyword("JOIN")
        table = self._expect_ident("table name").value
        self._expect_keyword("ON")
        left = self._column_ref()
        self._expect_op("=")
        right = self._column_ref()
        return ast.JoinClause(start.line, start.column, kind, str(table),
                              left, right)

    def _column_list(self) -> list[ast.ColumnRef]:
        cols = [self._column_ref()]
        while self._accept_op(","):
            cols.append(self._column_ref())
        return cols

    def _column_ref(self) -> ast.ColumnRef:
        token = self._expect_ident("column name")
        name, table = str(token.value), None
        if self._at_op("."):
            self._next()
            col = self._expect_ident("column name")
            table, name = name, str(col.value)
        return ast.ColumnRef(token.line, token.column, name, table)

    # -- boolean expressions --------------------------------------------------

    def _bool_expr(self) -> ast.BoolExpr:
        return self._or_expr()

    def _or_expr(self) -> ast.BoolExpr:
        first = self._and_expr()
        parts = [first]
        while self._accept_keyword("OR"):
            parts.append(self._and_expr())
        if len(parts) == 1:
            return first
        return ast.OrExpr(first.line, first.col, tuple(parts))

    def _and_expr(self) -> ast.BoolExpr:
        first = self._not_expr()
        parts = [first]
        while self._accept_keyword("AND"):
            parts.append(self._not_expr())
        if len(parts) == 1:
            return first
        return ast.AndExpr(first.line, first.col, tuple(parts))

    def _not_expr(self) -> ast.BoolExpr:
        token = self._accept_keyword("NOT")
        if token is not None:
            if self._at_keyword("EXISTS"):
                exists = self._exists()
                return ast.ExistsExpr(token.line, token.column,
                                      exists.subquery, negated=True)
            return ast.NotExpr(token.line, token.column, self._not_expr())
        return self._predicate()

    def _exists(self) -> ast.ExistsExpr:
        token = self._expect_keyword("EXISTS")
        lparen = self._expect_op("(")
        sub = self._select()
        rparen = self._expect_op(")")
        # Hints are collected text-wide at lex time; one positioned
        # inside this subquery would silently reshape the *outer*
        # statement's plan, so refuse it where the user wrote it.
        for hint in self.hints:
            if (lparen.line, lparen.column) < (hint.line, hint.col) \
                    < (rparen.line, rparen.column):
                raise error_at(
                    "planner hints are only supported in the top-level "
                    "statement, not inside subqueries",
                    self.text, hint.line, hint.col,
                )
        return ast.ExistsExpr(token.line, token.column, sub)

    def _predicate(self) -> ast.BoolExpr:
        if self._at_keyword("EXISTS"):
            return self._exists()
        if self._at_op("(") and self._parenthesized_bool():
            self._next()
            inner = self._bool_expr()
            self._expect_op(")")
            return inner
        operand = self._value_expr()
        token = self._peek()
        if token.kind == "OP" and token.value in _COMPARE_OPS:
            self._next()
            right = self._value_expr()
            return ast.Compare(token.line, token.column, str(token.value),
                               operand, right)
        negated = self._accept_keyword("NOT") is not None
        if self._accept_keyword("BETWEEN"):
            lo = self._value_expr()
            self._expect_keyword("AND")
            hi = self._value_expr()
            return ast.BetweenExpr(token.line, token.column, operand,
                                   lo, hi, negated)
        if self._accept_keyword("IN"):
            self._expect_op("(")
            values = [self._literal_value()]
            while self._accept_op(","):
                values.append(self._literal_value())
            self._expect_op(")")
            return ast.InExpr(token.line, token.column, operand,
                              tuple(values), negated)
        if self._accept_keyword("LIKE"):
            pattern = self._peek()
            if pattern.kind != "STRING":
                raise self._error(
                    f"LIKE takes a string pattern, got {pattern.describe()}",
                    pattern,
                )
            self._next()
            return ast.LikeExpr(token.line, token.column, operand,
                                str(pattern.value), negated)
        raise self._error(
            "expected a comparison, BETWEEN, IN or LIKE, got "
            f"{token.describe()}", token,
        )

    def _parenthesized_bool(self) -> bool:
        """Decide whether the '(' at the cursor opens a *boolean* group.

        Scans ahead to the matching ')' at depth 0: if a boolean-only
        token (AND/OR/NOT/comparison/BETWEEN/IN/LIKE/EXISTS) occurs
        before it closes, the group is boolean; otherwise it is a value
        expression like ``(1 - l_discount)``.
        """
        depth = 0
        for ahead in range(len(self.tokens) - self.pos):
            token = self._peek(ahead)
            if token.kind == "OP" and token.value == "(":
                depth += 1
            elif token.kind == "OP" and token.value == ")":
                depth -= 1
                if depth == 0:
                    return False
            elif depth >= 1:
                if token.kind == "KEYWORD" and token.value in (
                        "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE",
                        "EXISTS"):
                    return True
                if token.kind == "OP" and token.value in _COMPARE_OPS:
                    return True
            if token.kind == "EOF":
                break
        return False

    # -- value expressions ----------------------------------------------------

    def _value_expr(self) -> ast.Expr:
        left = self._term()
        while self._at_op("+", "-"):
            op = self._next()
            right = self._term()
            left = ast.Arith(op.line, op.column, str(op.value), left, right)
        return left

    def _term(self) -> ast.Expr:
        left = self._factor()
        while self._at_op("*", "/"):
            op = self._next()
            right = self._factor()
            left = ast.Arith(op.line, op.column, str(op.value), left, right)
        return left

    def _factor(self) -> ast.Expr:
        minus = self._accept_op("-")
        expr = self._primary()
        if minus is not None:
            if isinstance(expr, ast.Literal) and isinstance(
                    expr.value, (int, float)):
                return ast.Literal(minus.line, minus.column, -expr.value)
            return ast.Negate(minus.line, minus.column, expr)
        return expr

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind in ("NUMBER", "STRING"):
            self._next()
            return ast.Literal(token.line, token.column, token.value)
        if token.kind == "PARAM":
            return self._param_ref()
        if self._at_keyword("DATE"):
            return self._date_literal()
        if self._at_keyword("CASE"):
            return self._case()
        if self._accept_op("("):
            inner = self._value_expr()
            self._expect_op(")")
            return inner
        if token.kind == "IDENT":
            if (token.value.lower() in _AGG_FUNCS
                    and self._peek(1).kind == "OP"
                    and self._peek(1).value == "("):
                return self._func_call()
            return self._column_ref()
        raise self._error(f"expected an expression, got {token.describe()}",
                          token)

    def _date_literal(self) -> ast.Literal:
        token = self._expect_keyword("DATE")
        text = self._peek()
        if text.kind != "STRING":
            raise self._error(
                f"DATE takes a 'YYYY-MM-DD' string, got {text.describe()}",
                text,
            )
        self._next()
        try:
            parsed = datetime.date.fromisoformat(str(text.value))
        except ValueError:
            raise self._error(
                f"invalid date literal {text.value!r} "
                "(expected 'YYYY-MM-DD')", text,
            ) from None
        # Engine convention: dates are integer days since 1992-01-01.
        return ast.Literal(token.line, token.column,
                           (parsed - _DATE_BASE).days)

    def _func_call(self) -> ast.FuncCall:
        name = self._next()
        self._expect_op("(")
        arg: ast.Expr | ast.Star
        star = self._accept_op("*")
        if star is not None:
            arg = ast.Star(star.line, star.column)
        else:
            arg = self._value_expr()
        self._expect_op(")")
        return ast.FuncCall(name.line, name.column,
                            str(name.value).lower(), arg)

    def _case(self) -> ast.Case:
        token = self._expect_keyword("CASE")
        self._expect_keyword("WHEN")
        condition = self._bool_expr()
        self._expect_keyword("THEN")
        then = self._value_expr()
        self._expect_keyword("ELSE")
        otherwise = self._value_expr()
        self._expect_keyword("END")
        return ast.Case(token.line, token.column, condition, then, otherwise)

    def _param_ref(self) -> ast.ParamRef:
        """Consume one PARAM token, assigning its statement-order slot."""
        token = self._next()
        name = token.value if token.value is None else str(token.value)
        style = "named" if name is not None else "positional"
        if self._param_style is not None and style != self._param_style:
            raise self._error(
                "cannot mix '?' and ':name' parameter styles in one "
                "statement", token,
            )
        self._param_style = style
        ref = ast.ParamRef(token.line, token.column,
                           index=len(self.params), name=name)
        self.params.append(ref)
        return ref

    def _literal_value(self) -> object:
        token = self._peek()
        if token.kind == "PARAM":
            return self._param_ref()
        if token.kind in ("NUMBER", "STRING"):
            self._next()
            return token.value
        if self._at_keyword("DATE"):
            return self._date_literal().value
        if self._at_op("-"):
            self._next()
            number = self._peek()
            if number.kind == "NUMBER":
                self._next()
                return -number.value  # type: ignore[operator]
        raise self._error(f"expected a literal, got {token.describe()}",
                          token)
