"""Hand-written SQL lexer.

Produces a flat token stream with 1-based line/column positions, which the
parser threads into every error message.  Planner hints travel in
``/*+ ... */`` comments; the lexer keeps them as ``HINT`` tokens (ordinary
``/* ... */`` and ``--`` comments are skipped), so the parser can attach
them to the statement without the grammar knowing about hint syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SqlError

#: Words with grammatical meaning; everything else is an identifier
#: (aggregate function names stay identifiers — they matter only in
#: front of a parenthesis).
KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "BETWEEN", "IN",
    "LIKE", "AS", "JOIN", "INNER", "LEFT", "OUTER", "SEMI", "ANTI",
    "ON", "GROUP", "BY", "ORDER", "ASC", "DESC", "LIMIT", "EXISTS",
    "CASE", "WHEN", "THEN", "ELSE", "END", "DATE", "EXPLAIN",
})

#: Multi-character operators first so maximal munch wins.
_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">",
              "+", "-", "*", "/", "(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """One lexeme: kind, normalized value, and its source position."""

    kind: str          # KEYWORD | IDENT | NUMBER | STRING | OP | HINT
                       # | PARAM | EOF
    value: object      # keyword/op text, identifier, parsed literal,
                       # hint body, parameter name (None for '?')
    line: int          # 1-based
    column: int        # 1-based
    text: str = ""     # the raw lexeme, for error messages

    def describe(self) -> str:
        """Human-readable form for 'expected X, got Y' messages."""
        if self.kind == "EOF":
            return "end of input"
        if self.kind == "STRING":
            return f"string {self.value!r}"
        if self.kind == "KEYWORD":
            return f"keyword {self.value}"
        if self.kind == "IDENT":
            return f"identifier {self.value!r}"
        if self.kind == "PARAM":
            return f"parameter {self.text}"
        return repr(self.text or str(self.value))


def error_at(message: str, text: str, line: int, column: int) -> SqlError:
    """A position-annotated SqlError with a caret under the offender."""
    lines = text.splitlines() or [""]
    snippet = lines[line - 1] if 0 < line <= len(lines) else ""
    caret = " " * (column - 1) + "^"
    return SqlError(
        f"{message} at line {line}, column {column}\n"
        f"  {snippet}\n  {caret}"
    )


class Lexer:
    """Tokenizes one SQL statement string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- character plumbing -------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.text[i] if i < len(self.text) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _error(self, message: str, line: int | None = None,
               column: int | None = None) -> SqlError:
        return error_at(message, self.text,
                        self.line if line is None else line,
                        self.column if column is None else column)

    # -- token production ---------------------------------------------------

    def tokens(self) -> list[Token]:
        """The full token list, ending with one EOF token."""
        out = list(self._scan())
        out.append(Token("EOF", None, self.line, self.column))
        return out

    def _scan(self) -> Iterator[Token]:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
                continue
            if ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "/" and self._peek(1) == "*":
                token = self._block_comment()
                if token is not None:
                    yield token
                continue
            if ch == "'":
                yield self._string()
                continue
            if ch == "?" or ch == ":":
                yield self._param()
                continue
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._number()
                continue
            if ch.isalpha() or ch == "_":
                yield self._word()
                continue
            op = self._operator()
            if op is not None:
                yield op
                continue
            raise self._error(f"unexpected character {ch!r}")

    def _block_comment(self) -> Token | None:
        """Skip ``/* ... */``; return a HINT token for ``/*+ ... */``."""
        line, column = self.line, self.column
        self._advance(2)  # consume '/*'
        is_hint = self._peek() == "+"
        if is_hint:
            self._advance()
        start = self.pos
        while self.pos < len(self.text):
            if self._peek() == "*" and self._peek(1) == "/":
                body = self.text[start:self.pos].strip()
                self._advance(2)
                if is_hint:
                    return Token("HINT", body, line, column,
                                 text=f"/*+ {body} */")
                return None
            self._advance()
        # The caret belongs where the '*/' is missing — end of input —
        # with the opening position named, not under the opener (which
        # reads as "this comment is illegal here").
        what = "hint comment" if is_hint else "comment"
        raise self._error(
            f"unterminated {what} (opened at line {line}, "
            f"column {column})"
        )

    def _string(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        parts: list[str] = []
        while self.pos < len(self.text):
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":  # '' escapes a quote
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                value = "".join(parts)
                return Token("STRING", value, line, column,
                             text=f"'{value}'")
            parts.append(ch)
            self._advance()
        # As with comments: the defect is the missing closing quote at
        # end of input; point there and name where the literal opened.
        raise self._error(
            f"unterminated string literal (opened at line {line}, "
            f"column {column})"
        )

    def _param(self) -> Token:
        """``?`` (positional) or ``:name`` (named) bind parameters."""
        line, column = self.line, self.column
        if self._peek() == "?":
            self._advance()
            return Token("PARAM", None, line, column, text="?")
        self._advance()  # ':'
        if not (self._peek().isalpha() or self._peek() == "_"):
            raise self._error(
                "expected a parameter name after ':'", line, column
            )
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        name = self.text[start:self.pos]
        return Token("PARAM", name, line, column, text=f":{name}")

    def _number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.text[start:self.pos]
        if self._peek().isalpha() or self._peek() == "_":
            raise self._error(
                f"malformed number {text + self._peek()!r}", line, column
            )
        value: object = float(text) if is_float else int(text)
        return Token("NUMBER", value, line, column, text=text)

    def _word(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.text[start:self.pos]
        upper = text.upper()
        if upper in KEYWORDS:
            return Token("KEYWORD", upper, line, column, text=text)
        return Token("IDENT", text, line, column, text=text)

    def _operator(self) -> Token | None:
        line, column = self.line, self.column
        for op in _OPERATORS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                normalized = "!=" if op == "<>" else op
                return Token("OP", normalized, line, column, text=op)
        return None


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into a token list (EOF-terminated)."""
    return Lexer(text).tokens()


def normalize_statement(text: str) -> str:
    """The whitespace/comment-insensitive canonical form of a statement.

    Re-spells the token stream with single spaces: keywords uppercase,
    identifiers verbatim (the catalog is case-sensitive), literals in
    canonical form, planner hints kept (they change the plan, so they
    must distinguish cache keys), plain comments dropped.  Two statements
    normalize equal exactly when the parser would produce the same AST —
    the property the plan cache keys on.
    """
    parts: list[str] = []
    for token in tokenize(text):
        if token.kind == "EOF":
            break
        if token.kind == "KEYWORD":
            parts.append(str(token.value))
        elif token.kind == "STRING":
            escaped = str(token.value).replace("'", "''")
            parts.append(f"'{escaped}'")
        elif token.kind == "HINT":
            parts.append(f"/*+ {token.value} */")
        elif token.kind == "PARAM":
            parts.append(token.text)
        elif token.kind == "NUMBER":
            parts.append(repr(token.value))
        else:  # IDENT, OP
            parts.append(token.text or str(token.value))
    return " ".join(parts)
