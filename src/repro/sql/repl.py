"""An interactive SQL shell over a loaded workload.

Run with ``python -m repro.sql``.  By default it loads the paper's
micro-benchmark table (indexes on ``c1``/``c2``) and collects statistics;
``--tpch SF`` loads the tuned TPC-H-lite setup of Figures 1/4 instead —
stale statistics, advisor indexes and all, so the estimation traps are
live at the prompt.

Statements end with ``;``.  ``EXPLAIN SELECT ...`` prints the plan tree
without executing; plain selects print an aligned result table plus the
measured simulated time and I/O.  Meta commands start with a backslash:

    \\tables            list tables with row/page counts
    \\schema <table>    show a table's columns and indexes
    \\mode <m>          planner mode: original | tuned | smooth
    \\analyze           refresh statistics (invalidates cached plans),
                       print plan-cache counters and the last
                       statement's per-query cost ledger
    \\clients <n>       replay the last statement from N interleaved
                       cursors (deterministic cooperative scheduling)
    \\shards <n>        replay the last statement with its base table
                       partitioned N ways (per-shard ledger breakdown;
                       the partitioning is dropped again afterwards)
    \\metrics           telemetry metrics in deterministic text form
                       (tracing is on for the whole shell session)
    \\help              this text
    \\quit              exit (also: \\q, EOF)

The prompt is suppressed when stdin is not a TTY, so scripted sessions
(CI pipes a transcript through the REPL) produce clean output.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Iterable

from repro.database import Database
from repro.errors import ReproError
from repro.optimizer.planner import PlannerOptions

_BANNER = (
    "repro SQL shell — statements end with ';', \\help for help, "
    "\\q to quit"
)
_HELP = """
    \\tables            list tables with row/page counts
    \\schema <table>    show a table's columns and indexes
    \\mode <m>          planner mode: original | tuned | smooth
    \\analyze           refresh statistics (invalidates cached plans),
                       print plan-cache counters and the last
                       statement's per-query cost ledger
    \\clients <n>       replay the last statement from N interleaved
                       cursors (deterministic cooperative scheduling)
    \\shards <n>        replay the last statement with its base table
                       partitioned N ways (per-shard ledger breakdown;
                       the partitioning is dropped again afterwards)
    \\metrics           telemetry metrics in deterministic text form
                       (tracing is on for the whole shell session)
    \\help              this text
    \\quit              exit (also: \\q, EOF)
"""

#: Cap on rows printed per result; counts are always exact.
DISPLAY_ROWS = 20


class Repl:
    """One shell session bound to one database."""

    def __init__(self, db: Database, out: IO[str] | None = None,
                 mode: str = "tuned"):
        self.db = db
        # The shell runs traced: every statement feeds the metrics
        # registry that \metrics prints.  Tracing charges no simulated
        # cost, so printed timings are unaffected.
        db.tracer.enable()
        # One session for the whole shell: repeated statements hit the
        # plan cache (\analyze reports its counters).
        self.conn = db.connect()
        # Bound once, at construction — late enough for harnesses that
        # swap sys.stdout before building the shell (capsys); pass
        # ``out`` explicitly to redirect an already-built shell.
        self.out = out if out is not None else sys.stdout
        self.mode = mode
        # The last successfully *executed* statement (EXPLAINs run
        # nothing): its result feeds \analyze's per-query ledger and
        # its text is what \clients replays concurrently.
        self._last_sql: str | None = None
        self._last_result = None

    # -- top level -----------------------------------------------------------

    def run(self, lines: Iterable[str], interactive: bool = False) -> None:
        """Consume input lines until EOF or ``\\quit``."""
        self._print(_BANNER)
        buffer: list[str] = []
        if interactive:
            self._prompt(buffer)
        for line in lines:
            stripped = line.strip()
            if not buffer and not stripped:
                # Stray blank lines must not open a statement buffer, or
                # the next meta command would be swallowed as SQL text.
                if interactive:
                    self._prompt(buffer)
                continue
            if not buffer and stripped.startswith(("\\", ".")):
                if not self._meta(stripped.lstrip("\\.")):
                    return
                if interactive:
                    self._prompt(buffer)
                continue
            # Lines keep their own newlines, so plain concatenation
            # preserves the user's line numbering in error positions.
            buffer.append(line if line.endswith("\n") else line + "\n")
            if _statement_complete("".join(buffer)):
                self._execute("".join(buffer))
                buffer = []
            if interactive:
                self._prompt(buffer)
        if buffer and "".join(buffer).strip():
            self._execute("".join(buffer))

    # -- pieces --------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def _prompt(self, buffer: list[str]) -> None:
        prompt = "   ...> " if buffer else "sql> "
        self.out.write(prompt)
        self.out.flush()

    def _options(self) -> PlannerOptions:
        from repro.workloads.tpch.queries import mode_options
        return mode_options(self.mode)

    def _meta(self, command: str) -> bool:
        """Handle one meta command; False means "exit the shell"."""
        parts = command.split()
        name = parts[0].lower() if parts else ""
        if name in ("q", "quit", "exit"):
            return False
        if name == "help":
            self._print("Meta commands:" + _HELP.rstrip())
        elif name == "tables":
            for table in sorted(self.db.tables.values(),
                                key=lambda t: t.name):
                indexes = ", ".join(table.indexes) or "-"
                self._print(
                    f"{table.name:12} {table.row_count:>9} rows "
                    f"{table.num_pages:>7} pages  indexes: {indexes}"
                )
        elif name == "schema" and len(parts) == 2:
            try:
                table = self.db.table(parts[1])
            except ReproError as exc:
                self._print(f"error: {exc}")
                return True
            for column in table.schema.columns:
                marker = "  [indexed]" if column.name in table.indexes else ""
                self._print(f"{column.name:20} {column.ctype.value}{marker}")
        elif name == "mode" and len(parts) == 2:
            if parts[1] not in ("original", "tuned", "smooth"):
                self._print("error: mode must be original, tuned or smooth")
            else:
                self.mode = parts[1]
                self._print(f"planner mode: {self.mode}")
        elif name == "analyze":
            self.db.analyze()
            self._print("statistics refreshed")
            # Refreshing statistics bumps the catalog version: cached
            # plans are now stale and will re-plan on next use.  Show
            # the cache so the hit/miss/invalidation story is visible.
            self._print(self.db.plan_cache.describe())
            # The *per-query* ledger of the last statement — what that
            # one execution was charged, not the engine's global
            # totals (which fold every query of the session together).
            if self._last_result is not None:
                run = self._last_result.run
                self._print(
                    f"last query ledger: io={run.io_ms / 1000:.3f}s "
                    f"cpu={run.cpu_ms / 1000:.3f}s | "
                    f"{run.disk.pages_read} pages read "
                    f"({run.disk.seq_pages} seq, {run.disk.rand_pages} "
                    f"rand), {run.disk.pages_written} written | "
                    f"buffer {run.buffer_hits} hits / "
                    f"{run.buffer_misses} misses"
                )
        elif name == "clients" and len(parts) == 2:
            self._clients(parts[1])
        elif name == "shards" and len(parts) == 2:
            self._shards(parts[1])
        elif name == "metrics":
            # One source of truth: the plan cache's structured stats
            # become gauges, same as the server's stats frame.
            metrics = self.db.tracer.metrics
            for key, value in self.db.plan_cache.stats_dict().items():
                metrics.gauge(f"plan_cache_{key}").set(value)
            self._print(metrics.exposition())
        else:
            self._print(f"error: unknown command \\{command} "
                        "(\\help lists commands)")
        return True

    def _clients(self, arg: str) -> None:
        """The ``\\clients N`` smoke meta: concurrent replay."""
        from repro.exec.scheduler import CooperativeScheduler
        try:
            n = int(arg)
        except ValueError:
            self._print("error: \\clients takes a client count")
            return
        if not 1 <= n <= 32:
            self._print("error: client count must be between 1 and 32")
            return
        if self._last_sql is None:
            self._print("error: no statement to replay yet "
                        "(run a SELECT first)")
            return
        # A warm connection: concurrent cursors must not cold-reset the
        # shared substrate under each other.  One cold start up front
        # levels the field (the shell's own session has no live runs).
        conn = self.db.connect(options=self._options(), cold=False)
        scheduler = CooperativeScheduler(self.db)
        for i in range(n):
            scheduler.client(f"c{i + 1}").add_query(
                "replay", lambda c=conn: c.cursor().execute(self._last_sql))
        report = scheduler.run(cold=True)
        for record in report.records:
            ledger = record.ledger
            self._print(
                f"{record.client:>4}  {record.rows:>8} rows  "
                f"latency {record.latency_ms / 1000:.3f}s  "
                f"io {ledger.io_ms / 1000:.3f}s  "
                f"cpu {ledger.cpu_ms / 1000:.3f}s  "
                f"{ledger.disk.pages_read} pages  "
                f"{ledger.buffer_hits}h/{ledger.buffer_misses}m"
            )
        conserved = report.total_ledger().matches(self.db.runtime.totals())
        self._print(
            f"({n} interleaved clients, p50 {report.p50_ms / 1000:.3f}s, "
            f"p99 {report.p99_ms / 1000:.3f}s, "
            f"{report.throughput_qps:.1f} queries/s simulated; "
            "ledgers sum to runtime totals: "
            f"{'ok' if conserved else 'VIOLATED'})"
        )

    def _shards(self, arg: str) -> None:
        """The ``\\shards N`` meta: shard-parallel replay.

        Partitions the last statement's base table N ways, re-runs the
        statement with shard-parallel planning enabled, prints each
        shard's conserved ledger slice, then drops the partitioning —
        the base table itself is never modified, so the shell's
        catalog is exactly as before.
        """
        from dataclasses import replace

        from repro.exec.exchange import Exchange
        from repro.runtime import CostLedger
        try:
            n = int(arg)
        except ValueError:
            self._print("error: \\shards takes a shard count")
            return
        if not 2 <= n <= 32:
            self._print("error: shard count must be between 2 and 32")
            return
        if self._last_sql is None or self._last_result is None:
            self._print("error: no statement to replay yet "
                        "(run a SELECT first)")
            return
        table = self._last_result.plan.spec.table
        options = replace(self._options(), shard_parallel=True,
                          force_path=None)
        try:
            self.db.shard_table(table, n)
            conn = self.db.connect(options=options, cold=False)
            result = conn.run(self._last_sql, cold=True, keep_rows=False)
            exchange = next(
                (op for op in result.plan.operators()
                 if isinstance(op, Exchange)), None)
            if exchange is None:
                self._print(
                    f"(planner kept the serial plan — going wide loses "
                    f"on the model for this statement; "
                    f"{result.row_count} rows, "
                    f"{result.total_seconds:.3f} s simulated)"
                )
                return
            total = CostLedger()
            for i, ledger in enumerate(exchange.shard_ledgers):
                total.add(ledger)
                self._print(
                    f"{table}#{i:<3}  io {ledger.io_ms / 1000:.3f}s  "
                    f"cpu {ledger.cpu_ms / 1000:.3f}s  "
                    f"{ledger.disk.pages_read} pages  "
                    f"{ledger.buffer_hits}h/{ledger.buffer_misses}m"
                )
            run = result.run
            own = CostLedger(io_ms=run.io_ms, cpu_ms=run.cpu_ms,
                             disk=run.disk.snapshot(),
                             buffer_hits=run.buffer_hits,
                             buffer_misses=run.buffer_misses)
            self._print(
                f"({n} shards, {result.row_count} rows, "
                f"{result.total_seconds:.3f} s simulated completion; "
                "shard ledgers sum to the query ledger: "
                f"{'ok' if total.matches(own) else 'VIOLATED'})"
            )
        except ReproError as exc:
            self._print(f"error: {exc}")
        finally:
            if self.db.shard_set(table) is not None:
                self.db.unshard_table(table)

    def _execute(self, text: str) -> None:
        if not text.strip().rstrip(";").strip():
            return
        try:
            result = self.conn.run(text, options=self._options())
        except ReproError as exc:
            self._print(f"error: {exc}")
            return
        except Exception as exc:  # the shell must survive any statement
            self._print(f"error: {type(exc).__name__}: {exc}")
            return
        if isinstance(result, str):  # EXPLAIN
            self._print(result)
            return
        self._last_sql = text
        self._last_result = result
        self._print_table(result)
        self._print(
            f"({result.row_count} row"
            f"{'' if result.row_count == 1 else 's'}, "
            f"{result.total_seconds:.3f} s simulated, "
            f"{result.disk.requests} I/O requests, "
            f"{result.disk.bytes_read / 1e6:.1f} MB read)"
        )

    def _print_table(self, result) -> None:
        names = list(result.plan.root.schema.column_names)
        shown = result.rows[:DISPLAY_ROWS]
        cells = [[_fmt(v) for v in row] for row in shown]
        widths = [
            max(len(name), *(len(row[i]) for row in cells), 1)
            if cells else len(name)
            for i, name in enumerate(names)
        ]
        self._print(" | ".join(
            n.ljust(w) for n, w in zip(names, widths, strict=False)))
        self._print("-+-".join("-" * w for w in widths))
        for row in cells:
            self._print(" | ".join(
                c.rjust(w) for c, w in zip(row, widths, strict=False)))
        if len(result.rows) > DISPLAY_ROWS:
            self._print(f"... ({len(result.rows) - DISPLAY_ROWS} more)")


def _statement_complete(text: str) -> bool:
    """True when the buffered text ends a statement with ``;``.

    Quote- and comment-aware, so a ``;`` at the end of a line *inside*
    a multi-line string literal or comment does not split the statement
    early (the lexer would then see a truncated, invalid text).
    """
    in_string = False
    last_significant = ""
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            if ch == "'":
                if text[i + 1:i + 2] == "'":  # '' escapes a quote
                    i += 2
                    continue
                in_string = False
            i += 1
            continue
        if ch == "'":
            in_string = True
            i += 1
            continue
        if ch == "-" and text[i + 1:i + 2] == "-":
            newline = text.find("\n", i)
            if newline == -1:
                break
            i = newline + 1
            continue
        if ch == "/" and text[i + 1:i + 2] == "*":
            end = text.find("*/", i + 2)
            if end == -1:
                return False  # comment still open
            i = end + 2
            continue
        if not ch.isspace():
            last_significant = ch
        i += 1
    return not in_string and last_significant == ";"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if value is None:
        return "NULL"
    return str(value)


def load_database(args: argparse.Namespace) -> tuple[Database, str]:
    """Build the shell's database per CLI flags; returns (db, mode)."""
    if args.tpch is not None:
        from repro.experiments.fig1 import make_tuned_tpch
        setup = make_tuned_tpch(scale_factor=args.tpch)
        # The tuned setup's statistics are deliberately stale — install
        # them as the database's own catalog so the traps stay live.
        setup.db.use_catalog(setup.catalog)
        return setup.db, "tuned"
    from repro.workloads import build_micro_table
    db = Database()
    build_micro_table(db, num_tuples=args.rows)
    db.analyze()
    return db, "tuned"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sql",
        description="Interactive SQL shell over a simulated workload.",
    )
    parser.add_argument("--rows", type=int, default=60_000,
                        help="micro-table size (default 60000)")
    parser.add_argument("--tpch", type=float, default=None, metavar="SF",
                        help="load tuned TPC-H-lite at this scale factor "
                             "instead of the micro table")
    args = parser.parse_args(argv)
    db, mode = load_database(args)
    repl = Repl(db, mode=mode)
    repl.run(sys.stdin, interactive=sys.stdin.isatty())
    return 0
