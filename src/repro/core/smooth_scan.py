"""The Smooth Scan operator — the paper's core contribution (Sections III-IV).

Smooth Scan is driven by the secondary index like a classical index scan,
but morphs its heap-access strategy as the observed selectivity evolves:

* **Mode 0** (only under non-eager triggers): a true index scan — one
  random heap fetch per probe, produced TIDs recorded in the Tuple ID
  cache.
* **Mode 1 — Entire Page Probe**: each fetched heap page is processed
  completely; all qualifying tuples on it are produced (or parked in the
  Result Cache when an interesting order must be preserved), and the page
  is recorded in the Page ID cache so it is never fetched again.
* **Mode 2+ — Flattening Access**: each probe fetches a *morphing region*
  of adjacent pages in one near-sequential run; the region size evolves
  under a :class:`~repro.core.policy.MorphPolicy` (doubling on selectivity
  increase, with Elastic also halving on decrease), capped at the
  configured maximum (2K pages ≈ 16MB, the paper's sweet spot).

The operator never consults optimizer statistics — its only inputs are an
index, a key range and a residual predicate.  With ``ordered=True`` it
emits in strict index-key order (usable under ORDER BY / merge joins),
otherwise tuples stream out as pages are processed.

Both execution protocols are implemented natively.  :meth:`SmoothScan.rows`
is the paper's tuple-at-a-time pipeline; :meth:`SmoothScan.batches` is the
batch-vectorized engine — index entries arrive one leaf at a time
(:meth:`~repro.index.btree.BTreeIndex.scan_batches`), morphing-region runs
are probed whole and their output accumulated into batches flushed at the
batch-size threshold, and page probing compiles the key range and residual
predicate into selection lists instead of calling a closure per tuple.
Run as a single operator, the two paths produce identical rows in
identical order and charge identical simulated costs; only real (Python)
execution time differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.context import ExecutionContext
from repro.core.caches import PageIdCache, ResultCache, TupleIdCache
from repro.core.morph_stats import SmoothScanStats
from repro.core.policy import ElasticPolicy, MorphPolicy
from repro.core.trigger import EagerTrigger, Trigger
from repro.errors import PlanningError
from repro.exec.expressions import (
    KeyRange,
    Predicate,
    TruePredicate,
    range_chunk_filter,
    range_mask,
    range_selector,
    require_columns,
)
from repro.storage.chunk import mask_and
from repro.exec.iterator import Batch, Chunk, DEFAULT_BATCH_SIZE, Operator
from repro.index.btree import TID_SHIFT
from repro.storage.table import Table
from repro.storage.types import Row, TID

try:  # pragma: no cover - exercised implicitly when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_SLOT_MASK = (1 << TID_SHIFT) - 1

_DEFAULT_RESULT_CACHE_PARTITIONS = 16


@dataclass
class _RunState:
    """Per-execution state shared by the row and batch paths."""

    stats: SmoothScanStats
    page_cache: PageIdCache
    tuple_cache: TupleIdCache | None
    result_cache: ResultCache | None
    policy: MorphPolicy
    max_region: int
    col_pos: int
    names: tuple[str, ...]


class SmoothScan(Operator):
    """Statistics-oblivious access path morphing between index and full scan.

    Args:
        table: the table to scan.
        column: indexed column driving the probes.
        key_range: key interval to scan (default: the whole index).
        residual: extra predicate applied to every candidate tuple.
        policy: morphing policy (default Elastic, the paper's choice).
        trigger: when smooth behaviour starts (default Eager).
        ordered: preserve index-key output order via the Result Cache.
        max_mode: 1 caps the operator at Entire Page Probe (the Fig. 6
            sensitivity curve); 2 enables Flattening Access.
        max_region_pages: overrides the engine's region cap.
        result_cache_partitions: key-range partitions for bulk eviction.
        result_cache_memory_limit: bytes before far partitions spill.
    """

    def __init__(self, table: Table, column: str,
                 key_range: KeyRange | None = None,
                 residual: Predicate | None = None,
                 policy: MorphPolicy | None = None,
                 trigger: Trigger | None = None,
                 ordered: bool = False,
                 max_mode: int = 2,
                 max_region_pages: int | None = None,
                 result_cache_partitions: int = _DEFAULT_RESULT_CACHE_PARTITIONS,
                 result_cache_memory_limit: int | None = None):
        if max_mode not in (1, 2):
            raise PlanningError(f"max_mode must be 1 or 2, got {max_mode}")
        self.table = table
        self.column = column
        self.index = table.index_on(column)
        self.key_range = key_range or KeyRange.all()
        self.residual = residual or TruePredicate()
        require_columns(table.schema, self.residual)
        self.policy = policy or ElasticPolicy()
        self.trigger = trigger or EagerTrigger()
        self.ordered = ordered
        self.max_mode = max_mode
        self.max_region_pages = max_region_pages
        self.result_cache_partitions = result_cache_partitions
        self.result_cache_memory_limit = result_cache_memory_limit
        self.schema = table.schema
        #: Statistics of the most recent execution.
        self.last_stats: SmoothScanStats | None = None

    def name(self) -> str:
        return (
            f"SmoothScan({self.table.name}.{self.column}, "
            f"policy={self.policy.name}, trigger={self.trigger.name}, "
            f"{'ordered' if self.ordered else 'unordered'})"
        )

    # -- shared setup ------------------------------------------------------

    def _prepare(self, ctx: ExecutionContext) -> _RunState:
        """Build the caches, stats and policy state for one execution."""
        heap = self.table.heap
        stats = SmoothScanStats()
        self.last_stats = stats

        col_pos = self.schema.index_of(self.column)

        page_cache = PageIdCache(heap.num_pages)
        stats.page_cache_bytes = page_cache.memory_bytes

        tuple_cache: TupleIdCache | None = None
        if not self.trigger.eager:
            tuple_cache = TupleIdCache(heap.num_pages, heap.tuples_per_page)
            stats.tuple_cache_bytes = tuple_cache.memory_bytes

        result_cache: ResultCache | None = None
        if self.ordered:
            key_size = self.schema.columns[col_pos].byte_size
            entry_bytes = (
                self.schema.tuple_size(ctx.config.tuple_header) + key_size
            )
            result_cache = ResultCache(
                separators=self.index.root_key_separators(
                    self.result_cache_partitions
                ),
                bytes_per_entry=entry_bytes,
                memory_limit_bytes=self.result_cache_memory_limit,
                page_bytes=ctx.config.page_size,
            )
            stats.result_cache = result_cache.stats

        max_region = self.max_region_pages or ctx.config.max_region_pages
        if self.max_mode == 1:
            max_region = 1
        tracer = ctx.runtime.tracer
        tracer.emit(
            "morph.start", query_id=tracer.current_query_id,
            policy=self.policy.name, trigger=self.trigger.name,
            ordered=self.ordered, max_mode=self.max_mode,
            heap_pages=heap.num_pages,
        )
        return _RunState(
            stats=stats,
            page_cache=page_cache,
            tuple_cache=tuple_cache,
            result_cache=result_cache,
            policy=self.policy,
            max_region=max_region,
            col_pos=col_pos,
            names=self.schema.column_names,
        )

    # -- tuple-at-a-time execution ----------------------------------------

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        heap = self.table.heap
        state = self._prepare(ctx)
        stats = state.stats
        page_cache = state.page_cache
        tuple_cache = state.tuple_cache
        result_cache = state.result_cache
        policy = state.policy
        max_region = state.max_region
        col_pos = state.col_pos

        residual_fn = self.residual.bind(self.schema)
        in_range = self.key_range.contains
        tracer = ctx.runtime.tracer

        region = policy.initial_region()
        mode0_active = not self.trigger.eager
        flattened = False
        pages_res_global = 0
        pages_seen_smooth = 0

        rng = self.key_range
        for key, tid in self.index.scan(
            ctx, lo=rng.lo, hi=rng.hi,
            lo_inclusive=rng.lo_inclusive, hi_inclusive=rng.hi_inclusive,
        ):
            stats.probes += 1

            # ---- Mode 0: traditional index scan until the trigger fires.
            if mode0_active:
                page = ctx.get_page(heap, tid.page_id)
                stats.mode0_page_fetches += 1
                ctx.charge_inspect()
                row = page.get(tid.slot)
                if residual_fn(row):
                    stats.mode0_tuples += 1
                    stats.produced += 1
                    assert tuple_cache is not None
                    tuple_cache.add(tid)
                    ctx.charge_cache_insert()
                    ctx.charge_emit()
                    yield row
                if self.trigger.should_morph(stats.produced):
                    mode0_active = False
                    stats.morphed_at = stats.produced
                    tracer.emit(
                        "morph.trigger",
                        query_id=tracer.current_query_id,
                        value=float(stats.produced),
                        probes=stats.probes, trigger=self.trigger.name,
                    )
                    override = self.trigger.post_morph_policy()
                    if override is not None:
                        policy = override
                continue

            # ---- Smooth modes: Result Cache first (ordered only) ...
            if result_cache is not None:
                result_cache.advance(key)
                ctx.charge_cache_probe()
                cached = result_cache.take(key, tid, disk=ctx.disk)
                if cached is not None:
                    stats.produced += 1
                    ctx.charge_emit()
                    yield cached
                    continue

            # ---- ... then the Page ID cache check.
            ctx.charge_cache_probe()
            if page_cache.is_seen(tid.page_id):
                continue

            # ---- Fetch and process the morphing region.
            start = tid.page_id
            end = min(heap.num_pages, start + region)
            region_pages = 0
            run_start: int | None = None
            for pid in range(start, end):
                if page_cache.is_seen(pid):
                    if run_start is not None:
                        yield from self._process_run(
                            ctx, heap, run_start, pid - run_start,
                            page_cache, tuple_cache, result_cache,
                            col_pos, in_range, residual_fn, tid, stats,
                        )
                        region_pages += pid - run_start
                        run_start = None
                    continue
                if run_start is None:
                    run_start = pid
            if run_start is not None:
                yield from self._process_run(
                    ctx, heap, run_start, end - run_start,
                    page_cache, tuple_cache, result_cache,
                    col_pos, in_range, residual_fn, tid, stats,
                )
                region_pages += end - run_start

            region_pages_res = stats.pages_with_results - pages_res_global
            pages_res_global = stats.pages_with_results
            pages_seen_smooth += region_pages

            # ---- Policy update (Eqs. (1) and (2)).
            if region_pages > 0 and pages_seen_smooth > 0:
                local_sel = region_pages_res / region_pages
                global_sel = pages_res_global / pages_seen_smooth
                region = min(
                    max_region,
                    max(1, policy.next_region(region, local_sel, global_sel)),
                )
                stats.region_trace.append((stats.probes, region))
                if region > stats.max_region_used:
                    stats.max_region_used = region
                if region > 1 and not flattened:
                    # Mode 1 → Mode 2: the region first grew past one
                    # page, with the selectivities that drove it.
                    flattened = True
                    tracer.emit(
                        "morph.flatten",
                        query_id=tracer.current_query_id,
                        value=float(region),
                        local_selectivity=local_sel,
                        global_selectivity=global_sel,
                    )
        tracer.emit(
            "morph.finish", query_id=tracer.current_query_id,
            value=float(stats.pages_fetched),
            pages_fetched=stats.pages_fetched, produced=stats.produced,
            probes=stats.probes, max_region=stats.max_region_used,
            morphed_at=stats.morphed_at,
        )

    def _process_run(self, ctx: ExecutionContext, heap, run_start: int,
                     run_len: int, page_cache: PageIdCache,
                     tuple_cache: TupleIdCache | None,
                     result_cache: ResultCache | None, col_pos: int,
                     in_range, residual_fn, probe_tid: TID,
                     stats: SmoothScanStats) -> Iterator[Row]:
        """Fetch one contiguous run of unseen pages and probe them fully."""
        for page in ctx.get_run(heap, run_start, run_len):
            page_cache.mark(page.page_id)
            ctx.charge_cache_insert()
            stats.pages_fetched += 1
            ctx.charge_inspect(len(page))
            page_has_result = False
            for slot, row in page.rows_with_slots():
                key = row[col_pos]
                if not in_range(key) or not residual_fn(row):
                    continue
                page_has_result = True
                t = TID(page.page_id, slot)
                if tuple_cache is not None:
                    # Fig. 7b's post-morph overhead: a produced-tuple check
                    # for every qualifying tuple found by Smooth Scan.
                    ctx.charge_cache_probe()
                    if tuple_cache.contains(t):
                        continue
                if result_cache is None:
                    stats.produced += 1
                    ctx.charge_emit()
                    yield row
                elif t == probe_tid:
                    stats.produced += 1
                    ctx.charge_emit()
                    yield row
                else:
                    ctx.charge_cache_insert()
                    result_cache.insert(key, t, row, disk=ctx.disk)
            if page_has_result:
                stats.pages_with_results += 1

    # -- batch-vectorized execution ----------------------------------------

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        heap = self.table.heap
        state = self._prepare(ctx)
        stats = state.stats
        page_cache = state.page_cache
        tuple_cache = state.tuple_cache
        result_cache = state.result_cache
        policy = state.policy
        max_region = state.max_region
        col_pos = state.col_pos

        residual_fn = self.residual.bind(self.schema)
        qualify = range_selector(self.key_range, col_pos)
        residual_sel = (
            None if isinstance(self.residual, TruePredicate)
            else self.residual.bind_batch(self.schema)
        )
        # With no auxiliary cache consuming TIDs (eager + unordered, the
        # common case) page probing needs no slot positions — run fully
        # columnar: one key-range mask plus one residual mask per page
        # chunk, narrowing by selection vector without touching a row.
        fast_filter = None
        fast_mask = None
        if state.tuple_cache is None and state.result_cache is None:
            qualify_chunk = range_chunk_filter(self.key_range, col_pos)
            qualify_mask = range_mask(self.key_range, col_pos)
            if isinstance(self.residual, TruePredicate):
                fast_filter = qualify_chunk
                fast_mask = qualify_mask
            else:
                residual_chunk = self.residual.bind_chunk(self.schema)
                residual_mask = self.residual.bind_mask(self.schema)

                def fast_filter(chunk, _q=qualify_chunk, _r=residual_chunk):
                    kept = _q(chunk)
                    return None if kept is None else _r(kept)

                def fast_mask(chunk, _q=qualify_mask, _r=residual_mask):
                    return mask_and(_q(chunk), _r(chunk))

        tracer = ctx.runtime.tracer
        region = policy.initial_region()
        mode0_active = not self.trigger.eager
        flattened = False
        pages_res_global = 0
        pages_seen_smooth = 0
        num_pages = heap.num_pages
        is_seen = page_cache.is_seen

        # In the columnar config ``pending`` accumulates chunk parts (one
        # per qualifying page run), concatenated at flush; otherwise it
        # accumulates rows as before.
        columnar = fast_filter is not None
        pending: list = []

        def pending_size(parts: list) -> int:
            return sum(len(c) for c in parts) if columnar else len(parts)

        def as_batch(parts: list) -> Batch:
            return Chunk.concat(parts) if columnar else parts

        # Hot-loop bookkeeping kept in locals: the probe ordinal and the
        # per-batch count of Page-ID-cache probes (charged in bulk per
        # leaf batch).  Invariant: ``stats.probes = probes`` must run
        # immediately before every yield — a generator can only be
        # abandoned while suspended at a yield, so this keeps reported
        # internals current even under early termination (e.g. Limit).
        probes = 0
        rng = self.key_range

        def probe_region(tid: TID) -> Iterator[Batch]:
            """Fetch/process the morphing region at ``tid``, yield flushes.

            Shared by the scalar and vectorized probe loops; updates the
            enclosing execution state (pending output, region size and
            the selectivity accounting) in place.
            """
            nonlocal pending, region, pages_res_global, pages_seen_smooth
            nonlocal flattened
            start = tid.page_id
            end = min(num_pages, start + region)
            region_pages = 0
            run_start: int | None = None
            for pid in range(start, end):
                if is_seen(pid):
                    if run_start is not None:
                        pending = self._emit_run(
                            ctx, heap, run_start, pid - run_start,
                            state, qualify, residual_sel,
                            fast_filter, fast_mask, tid, pending,
                        )
                        if pending_size(pending) >= DEFAULT_BATCH_SIZE:
                            stats.probes = probes
                            yield as_batch(pending)
                            pending = []
                        region_pages += pid - run_start
                        run_start = None
                    continue
                if run_start is None:
                    run_start = pid
            if run_start is not None:
                pending = self._emit_run(
                    ctx, heap, run_start, end - run_start,
                    state, qualify, residual_sel,
                    fast_filter, fast_mask, tid, pending,
                )
                region_pages += end - run_start
            if pending_size(pending) >= DEFAULT_BATCH_SIZE:
                stats.probes = probes
                yield as_batch(pending)
                pending = []

            region_pages_res = stats.pages_with_results - pages_res_global
            pages_res_global = stats.pages_with_results
            pages_seen_smooth += region_pages

            # ---- Policy update (Eqs. (1) and (2)).
            if region_pages > 0 and pages_seen_smooth > 0:
                local_sel = region_pages_res / region_pages
                global_sel = pages_res_global / pages_seen_smooth
                region = min(
                    max_region,
                    max(1, policy.next_region(
                        region, local_sel, global_sel)),
                )
                stats.probes = probes
                stats.region_trace.append((probes, region))
                if region > stats.max_region_used:
                    stats.max_region_used = region
                if region > 1 and not flattened:
                    # Mode 1 → Mode 2: the region first grew past one
                    # page, with the selectivities that drove it.
                    flattened = True
                    tracer.emit(
                        "morph.flatten",
                        query_id=tracer.current_query_id,
                        value=float(region),
                        local_selectivity=local_sel,
                        global_selectivity=global_sel,
                    )

        # ---- Vectorized probe loop: with no auxiliary cache (and hence
        # no Mode 0 — non-eager triggers always build a Tuple ID cache),
        # each index entry reduces to one Page-ID-cache check.  Test a
        # whole leaf of packed codes against a live view of the cache
        # bitmap and jump straight to the next unseen page, recomputing
        # the seen mask only after each region fetch flips bits.
        seen_bits = page_cache.seen_view() if columnar else None
        if seen_bits is not None:
            code_batches = self.index.scan_code_batches(
                ctx, lo=rng.lo, hi=rng.hi,
                lo_inclusive=rng.lo_inclusive,
                hi_inclusive=rng.hi_inclusive,
            )
        else:
            code_batches = None
        if code_batches is not None:
            for codes in code_batches:
                n = len(codes)
                pages = codes >> TID_SHIFT
                page_checks = 0
                j = 0
                while j < n:
                    sub = pages[j:]
                    seen = (seen_bits[sub >> 3] >> (sub & 7)) & 1
                    hits = _np.flatnonzero(seen == 0)
                    if not hits.size:
                        probes += n - j
                        page_checks += n - j
                        break
                    k = j + int(hits[0])
                    probes += k - j + 1
                    page_checks += k - j + 1
                    code = int(codes[k])
                    yield from probe_region(
                        TID(code >> TID_SHIFT, code & _SLOT_MASK)
                    )
                    j = k + 1
                if page_checks:
                    ctx.charge_cache_probe(page_checks)
            stats.probes = probes
            if pending:
                yield as_batch(pending)
            tracer.emit(
                "morph.finish", query_id=tracer.current_query_id,
                value=float(stats.pages_fetched),
                pages_fetched=stats.pages_fetched,
                produced=stats.produced, probes=stats.probes,
                max_region=stats.max_region_used,
                morphed_at=stats.morphed_at,
            )
            return

        for keys, tids in self.index.scan_batches(
            ctx, lo=rng.lo, hi=rng.hi,
            lo_inclusive=rng.lo_inclusive, hi_inclusive=rng.hi_inclusive,
        ):
            page_checks = 0
            for j in range(len(keys)):
                tid = tids[j]
                probes += 1

                # ---- Mode 0: per-probe random fetches until the trigger
                # fires; inherently tuple-at-a-time.
                if mode0_active:
                    page = ctx.get_page(heap, tid.page_id)
                    stats.mode0_page_fetches += 1
                    ctx.charge_inspect()
                    row = page.get(tid.slot)
                    if residual_fn(row):
                        stats.mode0_tuples += 1
                        stats.produced += 1
                        assert tuple_cache is not None
                        tuple_cache.add(tid)
                        ctx.charge_cache_insert()
                        ctx.charge_emit()
                        pending.append(row)
                        if len(pending) >= DEFAULT_BATCH_SIZE:
                            stats.probes = probes
                            yield pending
                            pending = []
                    if self.trigger.should_morph(stats.produced):
                        mode0_active = False
                        stats.morphed_at = stats.produced
                        tracer.emit(
                            "morph.trigger",
                            query_id=tracer.current_query_id,
                            value=float(stats.produced),
                            probes=probes, trigger=self.trigger.name,
                        )
                        override = self.trigger.post_morph_policy()
                        if override is not None:
                            policy = override
                    continue

                # ---- Smooth modes: Result Cache first (ordered only) ...
                if result_cache is not None:
                    key = keys[j]
                    result_cache.advance(key)
                    ctx.charge_cache_probe()
                    cached = result_cache.take(key, tid, disk=ctx.disk)
                    if cached is not None:
                        stats.produced += 1
                        ctx.charge_emit()
                        pending.append(cached)
                        if len(pending) >= DEFAULT_BATCH_SIZE:
                            stats.probes = probes
                            yield pending
                            pending = []
                        continue

                # ---- ... then the Page ID cache check.
                page_checks += 1
                if is_seen(tid.page_id):
                    continue

                # ---- Fetch and process the morphing region, emitting each
                # contiguous run of unseen pages as one whole batch.
                yield from probe_region(tid)
            if page_checks:
                ctx.charge_cache_probe(page_checks)

        stats.probes = probes
        if pending:
            yield as_batch(pending)
        tracer.emit(
            "morph.finish", query_id=tracer.current_query_id,
            value=float(stats.pages_fetched),
            pages_fetched=stats.pages_fetched, produced=stats.produced,
            probes=stats.probes, max_region=stats.max_region_used,
            morphed_at=stats.morphed_at,
        )

    def _emit_run(self, ctx: ExecutionContext, heap, run_start: int,
                  run_len: int, state: _RunState, qualify, residual_sel,
                  fast_filter, fast_mask, probe_tid: TID,
                  out: list[Row]) -> list[Row]:
        """Vectorized run probe: append the run's output to ``out``.

        Fetches one contiguous run of unseen pages, filters each whole
        page through the compiled key-range/residual selectors, and
        appends produced rows (parking the rest in the Result Cache when
        an order must be preserved).  With ``fast_filter`` set (no
        auxiliary cache consumes TIDs) the page's cached columnar chunk
        is narrowed by mask instead — ``out`` then accumulates chunk
        parts, not rows — and multi-page runs evaluate ``fast_mask``
        once over the heap's cached run chunk, recovering the per-page
        statistics with one segmented reduction.  Charges exactly what
        the row path's ``_process_run`` charges.
        """
        stats = state.stats
        page_cache = state.page_cache
        tuple_cache = state.tuple_cache
        result_cache = state.result_cache
        col_pos = state.col_pos
        probe_page, probe_slot = probe_tid

        if fast_filter is not None:
            mark = page_cache.mark
            names = state.names
            if fast_mask is not None and _np is not None and run_len > 1:
                lens = []
                for page in ctx.get_run(heap, run_start, run_len):
                    mark(page.page_id)
                    ctx.charge_cache_insert()
                    stats.pages_fetched += 1
                    ctx.charge_inspect(len(page))
                    lens.append(len(page))
                merged = heap.run_chunk(run_start, run_len, names)
                mask = fast_mask(merged)
                if mask is None:
                    # Every row in the run qualifies.
                    stats.pages_with_results += run_len
                    stats.produced += len(merged)
                    ctx.charge_emit(len(merged))
                    out.append(merged)
                    return out
                if isinstance(mask, _np.ndarray):
                    offsets = [0]
                    for n in lens[:-1]:
                        offsets.append(offsets[-1] + n)
                    counts = _np.add.reduceat(
                        mask.astype(_np.int64), offsets
                    )
                    total = int(counts.sum())
                    if total:
                        stats.pages_with_results += int((counts > 0).sum())
                        stats.produced += total
                        ctx.charge_emit(total)
                        out.append(merged.filter(mask))
                    return out
                # Object-column mask (list): per-page fallback below,
                # minus the charges already paid for the fetched run.
                for page in heap.iter_run(run_start, run_len):
                    matched = fast_filter(page.chunk(names))
                    if matched is not None:
                        stats.pages_with_results += 1
                        stats.produced += len(matched)
                        ctx.charge_emit(len(matched))
                        out.append(matched)
                return out
            for page in ctx.get_run(heap, run_start, run_len):
                mark(page.page_id)
                ctx.charge_cache_insert()
                stats.pages_fetched += 1
                chunk = page.chunk(names)
                ctx.charge_inspect(len(chunk))
                matched = fast_filter(chunk)
                if matched is not None:
                    stats.pages_with_results += 1
                    stats.produced += len(matched)
                    ctx.charge_emit(len(matched))
                    out.append(matched)
            return out

        for page in ctx.get_run(heap, run_start, run_len):
            pid = page.page_id
            page_cache.mark(pid)
            ctx.charge_cache_insert()
            stats.pages_fetched += 1
            rows = page.all_rows()
            ctx.charge_inspect(len(rows))
            sel = qualify(rows)
            if sel and residual_sel is not None:
                sel = residual_sel(rows, sel)
            if not sel:
                continue
            stats.pages_with_results += 1
            if tuple_cache is not None:
                # Fig. 7b's post-morph overhead: a produced-tuple check
                # for every qualifying tuple found by Smooth Scan.
                ctx.charge_cache_probe(len(sel))
                contains = tuple_cache.contains
                sel = [i for i in sel if not contains(TID(pid, i))]
                if not sel:
                    continue
            if result_cache is None:
                stats.produced += len(sel)
                ctx.charge_emit(len(sel))
                out += [rows[i] for i in sel]
            else:
                insert = result_cache.insert
                for i in sel:
                    if pid == probe_page and i == probe_slot:
                        stats.produced += 1
                        ctx.charge_emit()
                        out.append(rows[i])
                    else:
                        row = rows[i]
                        ctx.charge_cache_insert()
                        insert(row[col_pos], TID(pid, i), row, disk=ctx.disk)
        return out
