"""Morphing triggering points (Section III-C).

* **Eager** (the paper's default): Smooth Scan from the very first tuple;
  no pre-morph bookkeeping needed at all.
* **Optimizer-driven**: run a traditional index scan until the optimizer's
  cardinality estimate is violated, then morph (a "robustness patch");
  tuples produced pre-morph are recorded in the Tuple ID cache.
* **SLA-driven**: morph only when the running cost projection says the SLA
  bound would otherwise be violated; the trigger cardinality is derived
  from Eq. (23) for the worst case (see :mod:`repro.costmodel.sla`), and
  after triggering the scan switches to the Greedy policy, as in Fig. 7b.
* **Buffer-pressure** (an extension beyond the paper, for concurrent
  workloads): the optimizer-driven rule, tightened by how full the
  *shared* buffer pool is — a contention-aware morph signal.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.policy import GreedyPolicy, MorphPolicy
from repro.storage.buffer import BufferPool


class Trigger(ABC):
    """Decides when Smooth Scan behaviour starts."""

    #: Display name used in experiment tables.
    name: str = "abstract"

    @property
    def eager(self) -> bool:
        """True when smooth behaviour is active from the first tuple."""
        return False

    @abstractmethod
    def should_morph(self, produced: int) -> bool:
        """True once ``produced`` result tuples warrant morphing."""

    def post_morph_policy(self) -> MorphPolicy | None:
        """Optional policy override applied at the moment of morphing."""
        return None


class EagerTrigger(Trigger):
    """Replace the access path with Smooth Scan outright (the default)."""

    name = "eager"

    @property
    def eager(self) -> bool:
        return True

    def should_morph(self, produced: int) -> bool:
        return True


class OptimizerDrivenTrigger(Trigger):
    """Morph once the optimizer's cardinality estimate is violated."""

    name = "optimizer-driven"

    def __init__(self, estimated_cardinality: int):
        if estimated_cardinality < 0:
            raise ValueError("estimated cardinality must be >= 0")
        self.estimated_cardinality = estimated_cardinality

    def should_morph(self, produced: int) -> bool:
        return produced > self.estimated_cardinality


class SLADrivenTrigger(Trigger):
    """Morph when staying traditional would break the SLA bound.

    ``trigger_cardinality`` is the tuple count at which morphing must start
    so that, even at 100% selectivity, the total cost stays within the SLA
    (computed by :func:`repro.costmodel.sla.trigger_cardinality`).
    """

    name = "sla-driven"

    def __init__(self, trigger_cardinality: int):
        if trigger_cardinality < 0:
            raise ValueError("trigger cardinality must be >= 0")
        self.trigger_cardinality = trigger_cardinality

    def should_morph(self, produced: int) -> bool:
        return produced >= self.trigger_cardinality

    def post_morph_policy(self) -> MorphPolicy | None:
        # Fig. 7b: "with this strategy we switch immediately to Greedy".
        return GreedyPolicy()


class BufferPressureTrigger(Trigger):
    """Morph earlier as the shared buffer pool fills up.

    Under concurrent traffic the optimizer-driven rule is too patient:
    by the time the cardinality estimate is violated, a full shared
    pool means every further random probe is a miss that evicts some
    *other* query's resident page (and gets evicted right back).  This
    trigger keeps the optimizer-driven shape — morph once ``produced``
    exceeds a threshold — but shrinks the threshold in proportion to
    pool occupancy: at an empty pool it behaves exactly like
    :class:`OptimizerDrivenTrigger`; at a full pool the threshold drops
    by ``sensitivity`` (a fraction of the estimate), so contended scans
    switch to sequential, amortizable I/O sooner.

    Occupancy is read live from the shared pool at every check, so the
    same plan morphs at different points depending on what the rest of
    the workload is doing to the engine — a contention-aware signal,
    still fully deterministic for a deterministic schedule.
    """

    name = "buffer-pressure"

    def __init__(self, estimated_cardinality: int, buffer: BufferPool,
                 sensitivity: float = 0.5):
        if estimated_cardinality < 0:
            raise ValueError("estimated cardinality must be >= 0")
        if not 0.0 <= sensitivity <= 1.0:
            raise ValueError("sensitivity must be within [0, 1]")
        self.estimated_cardinality = estimated_cardinality
        self.buffer = buffer
        self.sensitivity = sensitivity

    def effective_cardinality(self) -> int:
        """The morph threshold under the pool's *current* occupancy."""
        pressure = self.sensitivity * self.buffer.occupancy
        return int(self.estimated_cardinality * (1.0 - pressure))

    def should_morph(self, produced: int) -> bool:
        return produced > self.effective_cardinality()
