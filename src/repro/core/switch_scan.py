"""Switch Scan — the straw-man binary adaptation (Sections III and VI-F).

Runs a classical index scan while counting produced tuples; the moment the
count exceeds the optimizer's cardinality estimate, it abandons the index
strategy and restarts as a full table scan.  Tuples already produced are
remembered in a Tuple ID cache so the full-scan phase does not duplicate
them.  The execution time around the threshold therefore jumps by a full
scan's worth — the *performance cliff* of Figure 11 — while the worst case
stays bounded (index cost at the threshold + one full scan).
"""

from __future__ import annotations

from typing import Iterator

from repro.context import ExecutionContext
from repro.core.caches import TupleIdCache
from repro.exec.expressions import (
    KeyRange,
    Predicate,
    TruePredicate,
    range_mask,
    require_columns,
)
from repro.exec.iterator import Batch, Chunk, DEFAULT_BATCH_SIZE, Operator
from repro.storage.chunk import mask_and, mask_nonzero
from repro.storage.table import Table
from repro.storage.types import Row, TID


class SwitchScan(Operator):
    """Index scan that switches (once, irrevocably) to a full scan.

    Args:
        table: the table to scan.
        column: indexed column.
        key_range: key interval to scan.
        residual: extra predicate applied to every candidate tuple.
        threshold: result-cardinality threshold (usually the optimizer's
            estimate); exceeded ⇒ restart as a full scan.
    """

    def __init__(self, table: Table, column: str,
                 key_range: KeyRange | None = None,
                 residual: Predicate | None = None,
                 threshold: int = 0):
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.table = table
        self.column = column
        self.index = table.index_on(column)
        self.key_range = key_range or KeyRange.all()
        self.residual = residual or TruePredicate()
        require_columns(table.schema, self.residual)
        self.threshold = threshold
        self.schema = table.schema
        #: True when the last execution actually switched strategies.
        self.switched: bool = False

    def name(self) -> str:
        return (
            f"SwitchScan({self.table.name}.{self.column}, "
            f"threshold={self.threshold})"
        )

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        heap = self.table.heap
        self.switched = False
        residual_fn = self.residual.bind(self.schema)
        in_range = self.key_range.contains
        col_pos = self.schema.index_of(self.column)
        produced_tids = TupleIdCache(heap.num_pages, heap.tuples_per_page)
        produced = 0

        # Phase 1: classical index scan, monitoring actual cardinality.
        rng = self.key_range
        for _key, tid in self.index.scan(
            ctx, lo=rng.lo, hi=rng.hi,
            lo_inclusive=rng.lo_inclusive, hi_inclusive=rng.hi_inclusive,
        ):
            page = ctx.get_page(heap, tid.page_id)
            ctx.charge_inspect()
            row = page.get(tid.slot)
            if residual_fn(row):
                produced += 1
                produced_tids.add(tid)
                ctx.charge_cache_insert()
                ctx.charge_emit()
                yield row
            if produced > self.threshold:
                self.switched = True
                break
        if not self.switched:
            return

        # Phase 2: restart as a full scan, skipping already-produced TIDs.
        extent = ctx.config.extent_pages
        for start in range(0, heap.num_pages, extent):
            n = min(extent, heap.num_pages - start)
            for page in ctx.get_run(heap, start, n):
                ctx.charge_inspect(len(page))
                for slot, row in page.rows_with_slots():
                    if not in_range(row[col_pos]) or not residual_fn(row):
                        continue
                    ctx.charge_cache_probe()
                    if produced_tids.contains(TID(page.page_id, slot)):
                        continue
                    ctx.charge_emit()
                    yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Batch path: per-probe phase 1, vectorized full-scan phase 2."""
        heap = self.table.heap
        self.switched = False
        residual_fn = self.residual.bind(self.schema)
        col_pos = self.schema.index_of(self.column)
        names = self.schema.column_names
        qualify_mask = range_mask(self.key_range, col_pos)
        residual_mask = (
            None if isinstance(self.residual, TruePredicate)
            else self.residual.bind_mask(self.schema)
        )
        produced_tids = TupleIdCache(heap.num_pages, heap.tuples_per_page)
        produced = 0

        # Phase 1: classical index scan, monitoring actual cardinality.
        # Random per-TID heap fetches dominate here, so the tuple-at-a-time
        # index scan is kept — it also charges identically to rows() when
        # the switch fires mid-leaf.
        pending: list[Row] = []
        rng = self.key_range
        for _key, tid in self.index.scan(
            ctx, lo=rng.lo, hi=rng.hi,
            lo_inclusive=rng.lo_inclusive, hi_inclusive=rng.hi_inclusive,
        ):
            page = ctx.get_page(heap, tid.page_id)
            ctx.charge_inspect()
            row = page.get(tid.slot)
            if residual_fn(row):
                produced += 1
                produced_tids.add(tid)
                ctx.charge_cache_insert()
                ctx.charge_emit()
                pending.append(row)
                if len(pending) >= DEFAULT_BATCH_SIZE:
                    yield pending
                    pending = []
            if produced > self.threshold:
                self.switched = True
                break
        if pending:
            yield pending
        if not self.switched:
            return

        # Phase 2: restart as a full scan, skipping already-produced TIDs.
        # Columnar: one key-range/residual mask per page chunk; only the
        # produced-TID dedup inspects positions (slot == view position on
        # a whole-page chunk).
        contains = produced_tids.contains
        extent = ctx.config.extent_pages
        for start in range(0, heap.num_pages, extent):
            n = min(extent, heap.num_pages - start)
            parts: list[Chunk] = []
            for page in ctx.get_run(heap, start, n):
                pid = page.page_id
                chunk = page.chunk(names)
                ctx.charge_inspect(len(chunk))
                mask = qualify_mask(chunk)
                if residual_mask is not None:
                    mask = mask_and(mask, residual_mask(chunk))
                if mask is None:
                    sel = list(range(len(chunk)))
                else:
                    sel = mask_nonzero(mask)
                    if not isinstance(sel, list):
                        sel = sel.tolist()
                if not sel:
                    continue
                ctx.charge_cache_probe(len(sel))
                kept = [i for i in sel if not contains(TID(pid, i))]
                if kept:
                    parts.append(chunk if len(kept) == len(chunk)
                                 else chunk.take(kept))
            if parts:
                batch = Chunk.concat(parts)
                ctx.charge_emit(len(batch))
                yield batch
