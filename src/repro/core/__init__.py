"""The paper's contribution: Smooth Scan, Switch Scan and their machinery."""

from repro.core.caches import (
    PageIdCache,
    ResultCache,
    ResultCacheStats,
    TupleIdCache,
)
from repro.core.morph_join import MorphingIndexJoin, MorphJoinStats
from repro.core.morph_stats import SmoothScanStats
from repro.core.policy import (
    ElasticPolicy,
    GreedyPolicy,
    MorphPolicy,
    SelectivityIncreasePolicy,
    policy_by_name,
)
from repro.core.smooth_scan import SmoothScan
from repro.core.switch_scan import SwitchScan
from repro.core.trigger import (
    BufferPressureTrigger,
    EagerTrigger,
    OptimizerDrivenTrigger,
    SLADrivenTrigger,
    Trigger,
)

__all__ = [
    "BufferPressureTrigger",
    "EagerTrigger",
    "ElasticPolicy",
    "GreedyPolicy",
    "MorphJoinStats",
    "MorphPolicy",
    "MorphingIndexJoin",
    "OptimizerDrivenTrigger",
    "PageIdCache",
    "ResultCache",
    "ResultCacheStats",
    "SLADrivenTrigger",
    "SelectivityIncreasePolicy",
    "SmoothScan",
    "SmoothScanStats",
    "SwitchScan",
    "Trigger",
    "TupleIdCache",
    "policy_by_name",
]
