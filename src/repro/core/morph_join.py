"""The morphable join sketched in Section IV-B (extension).

"By performing caching of additional (qualifying) tuples from the inner
input found along the way (i.e., for each page we fetch, we put the
remaining tuples in the cache), INLJ morphs into a variant of Hash Join
over time, with the index used only when a tuple is not found in the
cache."

:class:`MorphingIndexJoin` implements exactly that: every inner heap page
it fetches is probed entirely and *all* its tuples are parked in an
in-memory Tuple Cache keyed by join key; each outer row probes the cache
first and falls back to the index only on a miss (and only for keys whose
pages have not all been seen — tracked with the same Page ID cache Smooth
Scan uses).  With enough key repetition in the outer input the operator
converges to hash-join behaviour: index descents stop, heap pages are
read at most once.

The paper leaves this operator as future work and does not evaluate it;
it is provided as an extension, exercised by its own tests and an
ablation benchmark, and is not used by the reproduction experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.context import ExecutionContext
from repro.core.caches import PageIdCache
from repro.exec.expressions import Predicate, TruePredicate
from repro.exec.iterator import Batch, Operator
from repro.exec.joins import _joined_schema
from repro.storage.table import Table
from repro.storage.types import Row


@dataclass
class MorphJoinStats:
    """Instrumentation of one MorphingIndexJoin execution."""

    outer_rows: int = 0
    cache_hits: int = 0
    index_probes: int = 0
    pages_fetched: int = 0
    emitted: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Probes served from the Tuple Cache / all outer probes."""
        total = self.cache_hits + self.index_probes
        return self.cache_hits / total if total else 0.0


class MorphingIndexJoin(Operator):
    """INLJ that morphs toward a hash join via inner-tuple caching.

    Args:
        outer: outer input operator.
        inner_table: inner table with an index on ``inner_column``.
        inner_column: the join column on the inner side.
        outer_key: the join column on the outer side.
        residual: optional predicate over the joined schema.
    """

    def __init__(self, outer: Operator, inner_table: Table,
                 inner_column: str, outer_key: str,
                 residual: Predicate | None = None):
        self.outer = outer
        self.inner_table = inner_table
        self.inner_column = inner_column
        self.index = inner_table.index_on(inner_column)
        self.outer_pos = outer.schema.index_of(outer_key)
        self.inner_key_pos = inner_table.schema.index_of(inner_column)
        self.schema = _joined_schema(outer.schema, inner_table.schema)
        self.residual = residual or TruePredicate()
        #: Statistics of the most recent execution.
        self.last_stats: MorphJoinStats | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.outer,)

    def name(self) -> str:
        return f"MorphingIndexJoin({self.inner_table.name})"

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        heap = self.inner_table.heap
        stats = MorphJoinStats()
        self.last_stats = stats
        matches = self.residual.bind(self.schema)
        key_pos = self.inner_key_pos

        tuple_cache: dict[object, list[Row]] = {}
        page_cache = PageIdCache(heap.num_pages)
        #: Keys for which every pointing page has been processed — their
        #: cache entry is complete and the index never needs consulting.
        complete_keys: set[object] = set()

        def absorb_page(page) -> None:
            """Cache every tuple of a fetched inner page (the morph)."""
            page_cache.mark(page.page_id)
            stats.pages_fetched += 1
            ctx.charge_inspect(len(page))
            for row in page:
                ctx.charge_cache_insert()
                tuple_cache.setdefault(row[key_pos], []).append(row)

        for orow in self.outer.rows(ctx):
            stats.outer_rows += 1
            key = orow[self.outer_pos]
            ctx.charge_cache_probe()
            if key in complete_keys:
                stats.cache_hits += 1
                inner_rows = tuple_cache.get(key, ())
            else:
                # Index consulted only for not-yet-complete keys.
                stats.index_probes += 1
                tids = list(self.index.lookup(ctx, key))
                for tid in tids:
                    if not page_cache.is_seen(tid.page_id):
                        absorb_page(ctx.get_page(heap, tid.page_id))
                complete_keys.add(key)
                inner_rows = tuple_cache.get(key, ())
            for irow in inner_rows:
                joined = orow + irow
                ctx.charge_inspect()
                if matches(joined):
                    stats.emitted += 1
                    ctx.charge_emit()
                    yield joined

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Probe the morphing cache one outer batch at a time."""
        heap = self.inner_table.heap
        stats = MorphJoinStats()
        self.last_stats = stats
        matches = self.residual.bind(self.schema)
        key_pos = self.inner_key_pos
        opos = self.outer_pos

        tuple_cache: dict[object, list[Row]] = {}
        page_cache = PageIdCache(heap.num_pages)
        complete_keys: set[object] = set()
        cache_get = tuple_cache.get
        is_seen = page_cache.is_seen

        for obatch in self.outer.batches(ctx):
            stats.outer_rows += len(obatch)
            ctx.charge_cache_probe(len(obatch))
            out: list[Row] = []
            for orow in obatch:
                key = orow[opos]
                if key in complete_keys:
                    stats.cache_hits += 1
                    inner_rows = cache_get(key, ())
                else:
                    # Index consulted only for not-yet-complete keys.
                    stats.index_probes += 1
                    for tid in self.index.lookup(ctx, key):
                        if not is_seen(tid.page_id):
                            self._absorb_page(
                                ctx, ctx.get_page(heap, tid.page_id),
                                tuple_cache, page_cache, key_pos, stats,
                            )
                    complete_keys.add(key)
                    inner_rows = cache_get(key, ())
                if not inner_rows:
                    continue
                ctx.charge_inspect(len(inner_rows))
                for irow in inner_rows:
                    joined = orow + irow
                    if matches(joined):
                        stats.emitted += 1
                        ctx.charge_emit()
                        out.append(joined)
            if out:
                yield out

    @staticmethod
    def _absorb_page(ctx: ExecutionContext, page, tuple_cache: dict,
                     page_cache: PageIdCache, key_pos: int,
                     stats: MorphJoinStats) -> None:
        """Cache every tuple of a fetched inner page (the morph)."""
        page_cache.mark(page.page_id)
        stats.pages_fetched += 1
        rows = page.all_rows()
        ctx.charge_inspect(len(rows))
        ctx.charge_cache_insert(len(rows))
        setdefault = tuple_cache.setdefault
        for row in rows:
            setdefault(row[key_pos], []).append(row)
