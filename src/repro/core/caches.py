"""Smooth Scan's auxiliary data structures (Section IV-A).

* :class:`PageIdCache` — one bit per heap page; set once the page has been
  processed, so no heap page is ever fetched twice.
* :class:`TupleIdCache` — one bit per tuple; records tuples produced by a
  traditional index scan before morphing was triggered, preventing result
  duplication under the Optimizer/SLA-driven triggers.
* :class:`ResultCache` — a hash store, partitioned by key range (boundaries
  read off the index root), holding qualifying tuples found during
  entire-page probes that must wait for their index probe to preserve an
  interesting order.  Partitions are bulk-evicted once the probe key passes
  their range, and the furthest partitions can spill to overflow files
  under memory pressure.

Both bitmap caches really are bitmaps (a ``bytearray`` with bit ops) so the
memory footprints reported by experiments match the paper's "a couple of
MB for hundreds of GB of data" observation.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.storage.types import Row, TID

try:  # pragma: no cover - exercised implicitly when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class _Bitmap:
    """A plain bit set over ``[0, size)``."""

    __slots__ = ("size", "_bits", "_count")

    def __init__(self, size: int):
        self.size = size
        self._bits = bytearray((size + 7) // 8)
        self._count = 0

    def array_view(self):
        """Live ``uint8`` view of the byte array, or None without numpy.

        The backing ``bytearray`` is allocated once and never resized, so
        the view stays valid and reflects every :meth:`set` as it happens.
        Callers must treat it as read-only.
        """
        if _np is None:
            return None
        return _np.frombuffer(self._bits, dtype=_np.uint8)

    def get(self, i: int) -> bool:
        return bool(self._bits[i >> 3] & (1 << (i & 7)))

    def set(self, i: int) -> bool:
        """Set bit ``i``; returns True if it was newly set."""
        mask = 1 << (i & 7)
        byte = self._bits[i >> 3]
        if byte & mask:
            return False
        self._bits[i >> 3] = byte | mask
        self._count += 1
        return True

    @property
    def count(self) -> int:
        return self._count

    @property
    def memory_bytes(self) -> int:
        return len(self._bits)


class PageIdCache:
    """One bit per heap page: has Smooth Scan processed it yet?"""

    def __init__(self, num_pages: int):
        self._bitmap = _Bitmap(max(1, num_pages))
        self.num_pages = num_pages

    def is_seen(self, page_id: int) -> bool:
        """True when the page has already been processed."""
        return self._bitmap.get(page_id)

    def seen_view(self):
        """Live read-only ``uint8`` view of the bitmap bytes (or None).

        Bit ``page_id`` of the view (little-endian within each byte, as
        :meth:`is_seen` reads it) tracks the page's seen state, updating
        in place as pages are marked — letting the batch engine test a
        whole run of page ids with one vector expression.
        """
        return self._bitmap.array_view()

    def mark(self, page_id: int) -> bool:
        """Record the page as processed; True if it was new.

        Every mark on a zero-page table is out of bounds — there is no
        page 0 to process.
        """
        if not 0 <= page_id < self.num_pages:
            raise ExecutionError(
                f"page id {page_id} outside table of {self.num_pages} pages"
            )
        return self._bitmap.set(page_id)

    @property
    def pages_seen(self) -> int:
        """How many distinct pages have been processed (``#P_seen``)."""
        return self._bitmap.count

    @property
    def memory_bytes(self) -> int:
        """Bitmap footprint (140KB per million pages, as in §VI-B)."""
        return self._bitmap.memory_bytes


class TupleIdCache:
    """One bit per tuple: was it produced before morphing started?"""

    def __init__(self, num_pages: int, tuples_per_page: int):
        self.tuples_per_page = tuples_per_page
        self._bitmap = _Bitmap(max(1, num_pages * tuples_per_page))
        self.recorded = 0

    def _position(self, tid: TID) -> int:
        return tid.page_id * self.tuples_per_page + tid.slot

    def contains(self, tid: TID) -> bool:
        """True when the tuple was already produced pre-morph."""
        return self._bitmap.get(self._position(tid))

    def add(self, tid: TID) -> None:
        """Record a tuple produced by the traditional index scan."""
        if self._bitmap.set(self._position(tid)):
            self.recorded += 1

    @property
    def memory_bytes(self) -> int:
        """Bitmap footprint in bytes."""
        return self._bitmap.memory_bytes


@dataclass
class ResultCacheStats:
    """Instrumentation for Figure 9a."""

    inserts: int = 0
    probes: int = 0
    hits: int = 0
    evicted_entries: int = 0
    spills: int = 0
    unspills: int = 0
    #: Overflow pages written by spills / read back by unspills — the two
    #: halves of the cache's disk traffic, accounted separately.
    spill_pages_written: int = 0
    unspill_pages_read: int = 0
    peak_entries: int = 0
    peak_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Tuple requests served from the cache / total requests."""
        return self.hits / self.probes if self.probes else 0.0


class ResultCache:
    """Range-partitioned store of qualifying tuples awaiting their probe.

    ``separators`` (typically from
    :meth:`~repro.index.btree.BTreeIndex.root_key_separators`) split the key
    domain into partitions; :meth:`advance` bulk-drops every partition whose
    key range lies entirely below the current probe key.  When
    ``memory_limit_bytes`` is set, the partitions furthest ahead of the
    probe position spill to simulated overflow files and are read back on
    first probe.
    """

    def __init__(self, separators: list, bytes_per_entry: int,
                 memory_limit_bytes: int | None = None,
                 page_bytes: int = 8192):
        self.separators = sorted(separators)
        self.bytes_per_entry = max(1, bytes_per_entry)
        self.memory_limit_bytes = memory_limit_bytes
        self.page_bytes = page_bytes
        n_parts = len(self.separators) + 1
        self._partitions: list[dict[TID, Row]] = [{} for _ in range(n_parts)]
        self._spilled: list[dict[TID, Row] | None] = [None] * n_parts
        self._entries = 0
        #: Lowest partition the probe key has not yet passed; everything
        #: below it is known-evicted, so :meth:`advance` is O(1) per call
        #: when no new separator is crossed.
        self._min_live = 0
        self.stats = ResultCacheStats()

    # -- partition helpers -------------------------------------------------

    def partition_of(self, key: object) -> int:
        """Index of the partition whose key range contains ``key``."""
        return bisect_right(self.separators, key)

    @property
    def num_partitions(self) -> int:
        """Total partition count (``len(separators) + 1``)."""
        return len(self._partitions)

    @property
    def entries(self) -> int:
        """Entries currently held in memory (spilled ones excluded)."""
        return self._entries

    @property
    def memory_bytes(self) -> int:
        """Approximate in-memory footprint."""
        return self._entries * self.bytes_per_entry

    def _partition_pages(self, part: dict) -> int:
        return max(1, math.ceil(len(part) * self.bytes_per_entry
                                / self.page_bytes))

    # -- operations --------------------------------------------------------

    def insert(self, key: object, tid: TID, row: Row, disk=None) -> None:
        """Park a qualifying tuple until its index probe arrives.

        ``key`` must not lie below a separator the probe has already
        passed (:meth:`advance` is monotone): such a tuple's probe is
        gone, so parking it could only leak.  Smooth Scan's index-order
        probing guarantees this; other callers get a loud error instead
        of a silent leak.
        """
        i = self.partition_of(key)
        if i < self._min_live:
            raise ExecutionError(
                f"insert of key {key!r} into partition {i}, below the "
                f"already-advanced probe position {self._min_live}"
            )
        if self._spilled[i] is not None:
            self._spilled[i][tid] = row
        else:
            self._partitions[i][tid] = row
            self._entries += 1
        self.stats.inserts += 1
        if self._entries > self.stats.peak_entries:
            self.stats.peak_entries = self._entries
            self.stats.peak_bytes = self.memory_bytes
        if (self.memory_limit_bytes is not None
                and self.memory_bytes > self.memory_limit_bytes):
            self._spill_furthest(i, disk)

    def take(self, key: object, tid: TID, disk=None) -> Row | None:
        """Return (without deleting) the cached row for ``tid``, if any.

        Spilled partitions are read back (charging sequential I/O on
        ``disk``) before the probe — "overflow files that are read upon
        reaching the range keys belong to".
        """
        i = self.partition_of(key)
        self.stats.probes += 1
        if self._spilled[i] is not None:
            self._unspill(i, disk)
        row = self._partitions[i].get(tid)
        if row is not None:
            self.stats.hits += 1
        return row

    def advance(self, key: object) -> int:
        """Bulk-evict all partitions entirely below ``key``.

        Returns the number of evicted entries, spilled ones included —
        dropping a partition's overflow file evicts its entries just as
        surely as clearing its in-memory dict.  Partition ``j`` covers
        keys below ``separators[j]``; it is passed once
        ``key >= separators[j]``.  Scanning starts at the lowest live
        partition, so the common no-new-separator-crossed probe costs one
        comparison instead of a walk over every separator.
        """
        evicted = 0
        j = self._min_live
        separators = self.separators
        while j < len(separators) and key >= separators[j]:
            part = self._partitions[j]
            if part:
                evicted += len(part)
                self._entries -= len(part)
                self._partitions[j] = {}
            spilled = self._spilled[j]
            if spilled is not None:
                evicted += len(spilled)
                self._spilled[j] = None
            j += 1
        self._min_live = j
        self.stats.evicted_entries += evicted
        return evicted

    # -- spilling ----------------------------------------------------------

    def _spill_furthest(self, current_partition: int, disk) -> None:
        """Spill the in-memory partition furthest ahead of the probe.

        Preference order: partitions beyond the one being inserted into,
        then (when the insert partition is itself the furthest) that
        partition — something must give once the limit is exceeded.
        """
        candidates = [
            j for j in range(self.num_partitions - 1, -1, -1)
            if self._partitions[j] and self._spilled[j] is None
        ]
        if not candidates:
            return
        j = candidates[0]
        part = self._partitions[j]
        pages = self._partition_pages(part)
        if disk is not None:
            disk.overflow_write(pages)
        self._spilled[j] = part
        self._entries -= len(part)
        self._partitions[j] = {}
        self.stats.spills += 1
        self.stats.spill_pages_written += pages

    def _unspill(self, i: int, disk) -> None:
        """Read a spilled partition back from its overflow file.

        Charges a sequential *read* of the partition's pages — the write
        was already paid when the partition spilled; reading it back must
        not charge the write-plus-read cost of a fresh spill.
        """
        part = self._spilled[i]
        if part is None:
            return
        pages = self._partition_pages(part)
        if disk is not None:
            disk.overflow_read(pages)
        self._spilled[i] = None
        for tid, row in part.items():
            self._partitions[i][tid] = row
            self._entries += 1
        self.stats.unspills += 1
        self.stats.unspill_pages_read += pages
