"""Instrumentation of one Smooth Scan execution.

Everything Figures 7–9 report about the operator's internals is collected
here: probe counts, mode transitions, the morphing-region trace, morphing
accuracy (Fig. 9b) and the auxiliary-cache statistics (Fig. 9a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.caches import ResultCacheStats


@dataclass
class SmoothScanStats:
    """Counters and traces produced by one SmoothScan execution."""

    #: Index entries consumed (probes), including pre-morph Mode 0 ones.
    probes: int = 0
    #: Tuples produced by the traditional index scan before morphing.
    mode0_tuples: int = 0
    #: Result count at the moment morphing triggered (None = never; 0 = eager).
    morphed_at: int | None = None
    #: Heap pages fetched by smooth (Mode 1/2) processing.
    pages_fetched: int = 0
    #: Of those, pages that contained at least one qualifying tuple.
    pages_with_results: int = 0
    #: Heap pages fetched pre-morph by Mode 0 (may repeat; counts fetches).
    mode0_page_fetches: int = 0
    #: (probe ordinal, region size chosen for the next probe) trace.
    region_trace: list[tuple[int, int]] = field(default_factory=list)
    #: Largest morphing region ever used, in pages.
    max_region_used: int = 1
    #: Result-cache statistics (ordered scans only).
    result_cache: ResultCacheStats | None = None
    #: Auxiliary structure footprints in bytes.
    page_cache_bytes: int = 0
    tuple_cache_bytes: int = 0
    #: Tuples emitted in total.
    produced: int = 0

    @property
    def morphing_accuracy(self) -> float:
        """Fig. 9b: pages containing results / pages checked by morphing."""
        if self.pages_fetched == 0:
            return 1.0
        return self.pages_with_results / self.pages_fetched

    @property
    def cache_hit_rate(self) -> float:
        """Fig. 9a: result-cache hit rate (0.0 when no cache was used)."""
        if self.result_cache is None:
            return 0.0
        return self.result_cache.hit_rate

    def summary(self) -> dict:
        """A flat dict for experiment tables."""
        return {
            "probes": self.probes,
            "produced": self.produced,
            "morphed_at": self.morphed_at,
            "mode0_tuples": self.mode0_tuples,
            "pages_fetched": self.pages_fetched,
            "pages_with_results": self.pages_with_results,
            "morphing_accuracy": self.morphing_accuracy,
            "max_region_used": self.max_region_used,
            "cache_hit_rate": self.cache_hit_rate,
            "page_cache_bytes": self.page_cache_bytes,
            "tuple_cache_bytes": self.tuple_cache_bytes,
        }
