"""Morphing policies (Section III-B).

A policy decides how the morphing-region size evolves after each probe,
based on the *local* selectivity over the last morphing region (Eq. (1))
versus the *global* selectivity over all pages seen so far (Eq. (2)):

* **Greedy** — double after every probe; fastest convergence to a full
  scan, wasteful at low selectivity.
* **Selectivity-Increase** — double only when the local selectivity
  exceeds the global one; never shrinks (an early dense region inflates
  the region for the operator's whole lifetime — the Fig 8 failure mode).
* **Elastic** — double on denser-than-global, halve on sparser; adapts
  two ways and is the paper's most robust choice.

Reproduction note on the comparison operator: Eq. (1)/(2) are page-level
ratios and the probed page always contains the probed tuple, so on a
uniformly dense table ``local == global == 1`` forever and a *strictly*
greater-than test would never expand the region — contradicting Fig. 5b,
where Smooth Scan converges to within 20% of a full scan at 100%
selectivity.  A greater-or-equal test reconciles every reported behaviour:
dense uniform regions double every probe (greedy-like convergence), the
skewed head of Fig. 8 grows then shrinks under Elastic, and the
adversarial every-second-page layout of the competitive analysis keeps the
region small (CR ≈ 5 on HDD, the paper's 5.5).  We therefore default to
``>=`` and expose ``strict=True`` for the literal reading.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class MorphPolicy(ABC):
    """Decides the next morphing-region size after a probe."""

    #: Display name used in experiment tables.
    name: str = "abstract"

    def __init__(self, strict: bool = False):
        self.strict = strict

    def _increased(self, local_selectivity: float,
                   global_selectivity: float) -> bool:
        """Did the last region signal a (non-)decreasing selectivity?"""
        if self.strict:
            return local_selectivity > global_selectivity
        return local_selectivity >= global_selectivity

    @abstractmethod
    def next_region(self, region: int, local_selectivity: float,
                    global_selectivity: float) -> int:
        """Return the region size (in pages) for the next probe.

        Args:
            region: region size used for the probe just finished.
            local_selectivity: ``#P_res_region / #P_seen_region`` (Eq. (1)).
            global_selectivity: ``#P_res / #P_seen`` (Eq. (2)).
        """

    def initial_region(self) -> int:
        """Region size for the first probe: one page (Entire Page Probe)."""
        return 1


class GreedyPolicy(MorphPolicy):
    """Double the region after every probe, unconditionally."""

    name = "greedy"

    def next_region(self, region: int, local_selectivity: float,
                    global_selectivity: float) -> int:
        return region * 2


class SelectivityIncreasePolicy(MorphPolicy):
    """Double when the last region was denser than the global average."""

    name = "selectivity-increase"

    def next_region(self, region: int, local_selectivity: float,
                    global_selectivity: float) -> int:
        if self._increased(local_selectivity, global_selectivity):
            return region * 2
        return region


class ElasticPolicy(MorphPolicy):
    """Double on denser regions, halve on sparser ones (two-way morphing)."""

    name = "elastic"

    def next_region(self, region: int, local_selectivity: float,
                    global_selectivity: float) -> int:
        if self._increased(local_selectivity, global_selectivity):
            return region * 2
        return max(1, region // 2)


def policy_by_name(name: str, strict: bool = False) -> MorphPolicy:
    """Look up a policy by its display name.

    ``strict`` is passed through to the policy, selecting the literal
    ``>`` reading of the Eq. (1)/(2) comparison instead of the default
    ``>=`` (see the module docstring for why ``>=`` is the default).
    """
    policies: dict[str, type[MorphPolicy]] = {
        GreedyPolicy.name: GreedyPolicy,
        SelectivityIncreasePolicy.name: SelectivityIncreasePolicy,
        ElasticPolicy.name: ElasticPolicy,
    }
    try:
        return policies[name](strict=strict)
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; pick from {sorted(policies)}"
        ) from None
