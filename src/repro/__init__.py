"""repro — a reproduction of "Smooth Scan: Statistics-Oblivious Access Paths"
(Borovica-Gajic, Idreos, Ailamaki, Zukowski, Fraser — ICDE 2015).

The package implements, from scratch, everything the paper's evaluation
needs: a paged storage engine over a simulated disk, a B+-tree, a Volcano
executor with the three traditional access paths, the Smooth Scan and
Switch Scan operators (the paper's contribution), the Section V cost
model, a cost-based optimizer with stale-statistics injection, the
micro/skew/TPC-H workloads, and one experiment module per paper figure.

Quickstart::

    from repro import Database, SmoothScan, KeyRange, measure
    from repro.workloads import build_micro_table

    db = Database()
    table = build_micro_table(db, num_tuples=120_000)
    scan = SmoothScan(table, "c2", KeyRange(0, 20_000))
    result = measure(db, scan)
    print(result)                       # rows, simulated time, I/O requests
    print(scan.last_stats.summary())    # morphing internals
"""

from repro.config import CpuCosts, EngineConfig
from repro.context import ExecutionContext
from repro.core import (
    EagerTrigger,
    ElasticPolicy,
    GreedyPolicy,
    OptimizerDrivenTrigger,
    SLADrivenTrigger,
    SelectivityIncreasePolicy,
    SmoothScan,
    SwitchScan,
)
from repro.database import Database
from repro.errors import ReproError
from repro.exec import (
    Between,
    Comparison,
    CompareOp,
    FullTableScan,
    IndexScan,
    KeyRange,
    RunResult,
    SortScan,
    measure,
)
from repro.storage import Column, ColumnType, DiskProfile, Schema

__version__ = "1.0.0"

__all__ = [
    "Between",
    "Column",
    "ColumnType",
    "CompareOp",
    "Comparison",
    "CpuCosts",
    "Database",
    "DiskProfile",
    "EagerTrigger",
    "ElasticPolicy",
    "EngineConfig",
    "ExecutionContext",
    "FullTableScan",
    "GreedyPolicy",
    "IndexScan",
    "KeyRange",
    "OptimizerDrivenTrigger",
    "ReproError",
    "RunResult",
    "SLADrivenTrigger",
    "Schema",
    "SelectivityIncreasePolicy",
    "SmoothScan",
    "SortScan",
    "SwitchScan",
    "measure",
]
