"""repro — a reproduction of "Smooth Scan: Statistics-Oblivious Access Paths"
(Borovica-Gajic, Idreos, Ailamaki, Zukowski, Fraser — ICDE 2015).

The package implements, from scratch, everything the paper's evaluation
needs: a paged storage engine over a simulated disk, a B+-tree, a Volcano
executor with the three traditional access paths, the Smooth Scan and
Switch Scan operators (the paper's contribution), the Section V cost
model, a cost-based optimizer with stale-statistics injection, the
micro/skew/TPC-H workloads, and one experiment module per paper figure.

Quickstart (declarative — the planner picks the access paths)::

    from repro import Between, Database, PlannerOptions
    from repro.workloads import build_micro_table

    db = Database()
    build_micro_table(db, num_tuples=120_000)
    q = db.query("micro").where(Between("c2", 0, 20_000)).order_by("c2")
    result = db.execute(q, options=PlannerOptions(enable_smooth=True))
    print(result)             # rows, simulated time, I/O requests
    print(result.explain())   # plan tree, estimated vs. actual rows

Physical plans remain available for experiments that pin exact shapes::

    from repro import KeyRange, SmoothScan, measure
    scan = SmoothScan(db.table("micro"), "c2", KeyRange(0, 20_000))
    print(measure(db, scan))
"""

from repro.api import (
    Connection,
    Cursor,
    PreparedStatement,
    Query,
    QueryResult,
)
from repro.config import CpuCosts, EngineConfig
from repro.context import ExecutionContext
from repro.core import (
    BufferPressureTrigger,
    EagerTrigger,
    ElasticPolicy,
    GreedyPolicy,
    OptimizerDrivenTrigger,
    SLADrivenTrigger,
    SelectivityIncreasePolicy,
    SmoothScan,
    SwitchScan,
)
from repro.database import Database
from repro.errors import InterfaceError, ReproError, SqlError
from repro.optimizer import (
    PlanDecision,
    PlannedQuery,
    Planner,
    PlannerOptions,
    QuerySpec,
    StatisticsCatalog,
)
from repro.exec import (
    Between,
    Comparison,
    CompareOp,
    CooperativeScheduler,
    FullTableScan,
    IndexScan,
    KeyRange,
    RunResult,
    SortScan,
    WorkloadClient,
    WorkloadReport,
    measure,
)
from repro.runtime import CostLedger, EngineRuntime
from repro.storage import Column, ColumnType, DiskProfile, Schema

__version__ = "1.0.0"

__all__ = [
    "Between",
    "BufferPressureTrigger",
    "Column",
    "ColumnType",
    "CompareOp",
    "Comparison",
    "Connection",
    "CooperativeScheduler",
    "CostLedger",
    "Cursor",
    "CpuCosts",
    "Database",
    "DiskProfile",
    "EagerTrigger",
    "EngineRuntime",
    "ElasticPolicy",
    "EngineConfig",
    "ExecutionContext",
    "FullTableScan",
    "GreedyPolicy",
    "IndexScan",
    "InterfaceError",
    "KeyRange",
    "OptimizerDrivenTrigger",
    "PlanDecision",
    "PlannedQuery",
    "PreparedStatement",
    "Planner",
    "PlannerOptions",
    "Query",
    "QueryResult",
    "QuerySpec",
    "ReproError",
    "RunResult",
    "SLADrivenTrigger",
    "Schema",
    "SelectivityIncreasePolicy",
    "SmoothScan",
    "SortScan",
    "SqlError",
    "StatisticsCatalog",
    "SwitchScan",
    "WorkloadClient",
    "WorkloadReport",
    "measure",
]
