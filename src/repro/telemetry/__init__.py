"""Telemetry warehouse: trace events, metrics, history store, replay.

The observability layer of the engine, built on one principle the rest
of the repo already enforces: *simulated cost is the measurement, so
observing must never charge it*.  Every piece here reads the shared
clock and the per-query ledgers; none of them touches the disk, the
buffer pool or the clock — with tracing on or off, every committed
``bench_results`` artifact regenerates byte-identical.

Four cooperating pieces:

* :mod:`~repro.telemetry.tracer` — a process-local :class:`Tracer` on
  the :class:`~repro.runtime.EngineRuntime`, off by default.  Hot paths
  that already compute the data emit structured events: query spans
  (ledger totals at :class:`~repro.exec.stats.StreamingRun` close),
  Smooth Scan morph lifecycle, plan-cache hit/miss/invalidation,
  scheduler slice grants, server admission verdicts.
* :mod:`~repro.telemetry.metrics` — counters, gauges and nearest-rank
  histograms derived from the event stream, with a deterministic text
  exposition (the REPL ``\\metrics`` meta and the server ``stats``
  frame).
* :mod:`~repro.telemetry.store` + :mod:`~repro.telemetry.schema` +
  :mod:`~repro.telemetry.rollups` — the self-hosted history store:
  events flush into *engine tables* (heap files, B-tree index on query
  id) in a dedicated warehouse database, queryable through the repo's
  own SQL front end with time-binned rollups.
* :mod:`~repro.telemetry.capture` + :mod:`~repro.telemetry.replay` —
  any traced workload becomes a deterministic trace file
  (statement text, params, client, arrival order, recorded ledgers);
  ``python -m repro.telemetry.replay trace.json`` re-runs it through
  the cooperative scheduler and asserts ledger-level equivalence.
"""

from repro.telemetry.capture import (
    CapturedRun,
    CapturedStatement,
    WorkloadTrace,
    capture_run,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.replay import ReplayResult, replay_trace
from repro.telemetry.store import HistoryStore
from repro.telemetry.tracer import TraceEvent, Tracer

__all__ = [
    "CapturedRun",
    "CapturedStatement",
    "Counter",
    "Gauge",
    "Histogram",
    "HistoryStore",
    "MetricsRegistry",
    "ReplayResult",
    "TraceEvent",
    "Tracer",
    "WorkloadTrace",
    "capture_run",
    "replay_trace",
]
