"""The self-hosted history store: telemetry events in engine tables.

A :class:`HistoryStore` owns a *dedicated warehouse database* — never
the measured one.  Appending telemetry rows to the database under
measurement would grow its heap files and shift the auto-sized buffer
pool, perturbing the very costs being recorded; the warehouse instead
runs with a small fixed buffer pool and its own simulated clock, whose
time is analysis time, not workload time.

Events arrive via :meth:`HistoryStore.sync`, which drains a tracer's
buffer incrementally: raw events land in ``telemetry_events``, and every
closed query span (a ``query.start`` joined to its ``query.finish``,
enriched with the scheduler's client/label) flattens into one
``telemetry_queries`` row.  Both tables carry a ``bin`` column —
``floor(ts_ms / bin_ms)`` assigned at ingest — so time-binned rollups
(:mod:`~repro.telemetry.rollups`) are plain ``GROUP BY bin`` SQL.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.config import EngineConfig
from repro.telemetry.schema import (
    CLIENT_CHARS,
    DEFAULT_BIN_MS,
    EVENTS_TABLE,
    KIND_CHARS,
    LABEL_CHARS,
    QUERIES_TABLE,
    events_schema,
    queries_schema,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Connection
    from repro.database import Database
    from repro.telemetry.tracer import TraceEvent, Tracer

#: Buffer pool of the warehouse database, in pages.  Fixed (not
#: auto-sized) so growing history never changes its own access costs.
WAREHOUSE_BUFFER_PAGES = 256


def warehouse_database() -> "Database":
    """A fresh, empty warehouse database with a fixed buffer pool."""
    from repro.database import Database
    return Database(EngineConfig(buffer_pool_pages=WAREHOUSE_BUFFER_PAGES))


class HistoryStore:
    """Telemetry warehouse: engine tables + incremental event sync."""

    def __init__(self, db: "Database | None" = None, *,
                 bin_ms: float = DEFAULT_BIN_MS):
        self.db = db if db is not None else warehouse_database()
        self.bin_ms = float(bin_ms)
        self._created = False
        #: Open spans per (run_id, query_id): query.start / sched.start
        #: context waiting for the matching query.finish.
        self._open: dict[tuple[int, int], dict] = {}

    # -- schema -------------------------------------------------------------

    def _ensure_tables(self) -> None:
        if self._created:
            return
        self.db.create_table(QUERIES_TABLE, queries_schema())
        self.db.create_table(EVENTS_TABLE, events_schema())
        # The drill-down join key: span rows and raw events by query id.
        self.db.create_index(QUERIES_TABLE, "query_id")
        self.db.create_index(EVENTS_TABLE, "query_id")
        self._created = True

    # -- ingest -------------------------------------------------------------

    def _bin(self, ts_ms: float) -> int:
        return int(ts_ms // self.bin_ms)

    def sync(self, tracer: "Tracer", run_id: int = 0) -> int:
        """Drain the tracer's buffered events into the warehouse.

        Incremental: call as often as you like; spans still open (a
        ``query.start`` whose finish has not been emitted yet) are held
        back and completed by a later sync.  Returns the number of raw
        events ingested.
        """
        return self.ingest(tracer.drain(), run_id=run_id)

    def ingest(self, events: "Iterable[TraceEvent]", run_id: int = 0) -> int:
        """Append raw events and any query spans they close."""
        self._ensure_tables()
        event_rows: list[tuple] = []
        query_rows: list[tuple] = []
        for event in events:
            event_rows.append((
                run_id,
                event.seq,
                event.query_id,
                event.kind[:KIND_CHARS],
                event.ts_ms,
                event.value,
                self._bin(event.ts_ms),
            ))
            if event.query_id < 0:
                continue
            key = (run_id, event.query_id)
            if event.kind == "query.start":
                self._open[key] = {
                    "start_ms": event.ts_ms,
                    "cold": bool(event.attrs.get("cold", False)),
                    "client": event.attrs.get("client", ""),
                    "label": "",
                }
            elif event.kind == "sched.start":
                span = self._open.get(key)
                if span is not None:
                    span["client"] = event.attrs.get("client", span["client"])
                    span["label"] = event.attrs.get("label", "")
            elif event.kind == "query.finish":
                span = self._open.pop(key, None)
                if span is None:  # finish without a captured start
                    span = {"start_ms": event.ts_ms, "cold": False,
                            "client": "", "label": ""}
                attrs = event.attrs
                io_ms = attrs.get("io_ms", 0.0)
                cpu_ms = attrs.get("cpu_ms", 0.0)
                query_rows.append((
                    run_id,
                    event.query_id,
                    str(span["client"])[:CLIENT_CHARS],
                    str(span["label"])[:LABEL_CHARS],
                    int(span["cold"]),
                    int(bool(attrs.get("partial", False))),
                    int(attrs.get("rows", 0)),
                    io_ms,
                    cpu_ms,
                    io_ms + cpu_ms,
                    int(attrs.get("pages_read", 0)),
                    int(attrs.get("seq_pages", 0)),
                    int(attrs.get("rand_pages", 0)),
                    int(attrs.get("buffer_hits", 0)),
                    int(attrs.get("buffer_misses", 0)),
                    span["start_ms"],
                    event.ts_ms,
                    self._bin(event.ts_ms),
                ))
        if event_rows:
            self.db.append_rows(EVENTS_TABLE, event_rows)
        if query_rows:
            self.db.append_rows(QUERIES_TABLE, query_rows)
        return len(event_rows)

    # -- query --------------------------------------------------------------

    def connect(self, **kwargs) -> "Connection":
        """A SQL session on the warehouse (``cold=False`` by default).

        Warehouse queries are analysis, not measurement — warm reads by
        default so repeated rollups do not thrash its own caches.
        """
        self._ensure_tables()
        kwargs.setdefault("cold", False)
        return self.db.connect(**kwargs)

    @property
    def query_count(self) -> int:
        """Stored query spans (0 before any sync)."""
        if not self._created:
            return 0
        return self.db.table(QUERIES_TABLE).row_count

    @property
    def event_count(self) -> int:
        """Stored raw events (0 before any sync)."""
        if not self._created:
            return 0
        return self.db.table(EVENTS_TABLE).row_count
