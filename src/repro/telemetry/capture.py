"""Capture: turn a traced workload into a deterministic trace file.

The tracer's event stream already contains everything a replay needs —
``query.start`` carries statement text, bind params, planner options
and cold/warm; ``sched.start`` joins the scheduler's client identity,
weight and arrival order onto the span; ``query.finish`` closes it with
the rows produced and the per-query :class:`~repro.runtime.CostLedger`.
:func:`capture_run` performs that join, splitting spans into *seeds*
(statements run outside the scheduler, e.g. cache warm-up, in emission
order) and per-client closed-loop queues (in arrival order, clients in
admission order).

A :class:`WorkloadTrace` bundles captured runs with the setup recipe of
the database they ran against and serializes to a deterministic JSON
file (sorted keys, stable ordering) that
``python -m repro.telemetry.replay`` re-executes and verifies —
any captured workload becomes a regression suite.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.planner import PlannerOptions
    from repro.telemetry.tracer import TraceEvent

#: The trace-file schema tag (bump on incompatible shape changes).
TRACE_SCHEMA = "workload-trace/v1"

#: PlannerOptions fields a trace file can faithfully round-trip.
_OPTION_FIELDS = ("enable_index", "enable_sort_scan", "enable_smooth",
                  "enable_inlj", "force_path")
#: Hook-valued fields that cannot be serialized (callables).
_HOOK_FIELDS = ("smooth_policy", "smooth_trigger")


def options_to_dict(options: "PlannerOptions | None") -> dict | None:
    """Serialize planner options for a trace file.

    The four toggles and ``force_path`` round-trip; callable hooks
    (``smooth_policy`` / ``smooth_trigger``) cannot, so their presence
    is recorded as a marker that :func:`options_from_dict` rejects —
    a trace with hooks captures fine (the history store still works)
    but refuses to *replay*, loudly, instead of replaying wrong.
    """
    if options is None:
        return None
    out = {name: getattr(options, name) for name in _OPTION_FIELDS}
    hooks = [name for name in _HOOK_FIELDS
             if getattr(options, name, None) is not None]
    if hooks:
        out["unserializable_hooks"] = hooks
    return out


def options_from_dict(data: dict | None) -> "PlannerOptions | None":
    """Rebuild planner options recorded by :func:`options_to_dict`."""
    if data is None:
        return None
    from repro.optimizer.planner import PlannerOptions
    hooks = data.get("unserializable_hooks")
    if hooks:
        raise ReproError(
            "trace recorded planner options with callable hooks "
            f"{hooks}; such workloads cannot be replayed from a file"
        )
    return PlannerOptions(**{name: data[name] for name in _OPTION_FIELDS})


@dataclass
class CapturedStatement:
    """One executed statement: identity, text, params, and its outcome."""

    sql: str
    params: dict | None
    options: dict | None
    cold: bool
    client: str = ""
    label: str = ""
    #: Rows the original execution produced (replay must reproduce it).
    rows: int = 0
    #: The original per-query ledger (replay must match it).
    ledger: dict = field(default_factory=dict)
    #: The query span id in the originating trace (provenance only).
    query_id: int = -1

    def to_dict(self) -> dict:
        return {
            "sql": self.sql,
            "params": self.params,
            "options": self.options,
            "cold": self.cold,
            "client": self.client,
            "label": self.label,
            "rows": self.rows,
            "ledger": self.ledger,
            "query_id": self.query_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CapturedStatement":
        return cls(**data)


@dataclass
class CapturedRun:
    """One scheduler run: seeds, per-client queues, and its shape."""

    label: str
    #: Statements executed outside the scheduler, in emission order.
    seeds: list[CapturedStatement] = field(default_factory=list)
    #: name → ordered statement queue, clients in admission order.
    clients: dict[str, list[CapturedStatement]] = field(default_factory=dict)
    #: name → scheduling weight.
    weights: dict[str, int] = field(default_factory=dict)
    interleave: bool = True
    quantum: int = 1
    cold: bool = True

    @property
    def statement_count(self) -> int:
        return len(self.seeds) + sum(len(q) for q in self.clients.values())

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "seeds": [s.to_dict() for s in self.seeds],
            "clients": {name: [s.to_dict() for s in queue]
                        for name, queue in self.clients.items()},
            "client_order": list(self.clients),
            "weights": self.weights,
            "interleave": self.interleave,
            "quantum": self.quantum,
            "cold": self.cold,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CapturedRun":
        order = data.get("client_order") or list(data["clients"])
        return cls(
            label=data["label"],
            seeds=[CapturedStatement.from_dict(s) for s in data["seeds"]],
            clients={name: [CapturedStatement.from_dict(s)
                            for s in data["clients"][name]]
                     for name in order},
            weights={name: int(w) for name, w in data["weights"].items()},
            interleave=data["interleave"],
            quantum=data["quantum"],
            cold=data["cold"],
        )


def capture_run(events: "Iterable[TraceEvent]", label: str, *,
                interleave: bool = True, quantum: int = 1,
                cold: bool = True) -> CapturedRun:
    """Join one run's trace events into a :class:`CapturedRun`.

    ``events`` is typically ``tracer.drain()`` called right after the
    scheduler run (capture between runs keeps each run's events
    separate).  Spans whose ``query.start`` carries no statement text
    (fluent-API plans executed outside the session layer) cannot be
    replayed and raise — capture is all-or-nothing per run.
    """
    run = CapturedRun(label=label, interleave=interleave, quantum=quantum,
                      cold=cold)
    # query_id → the growing span; emission order preserved by dict.
    spans: dict[int, dict] = {}
    for event in events:
        if event.query_id < 0:
            continue
        if event.kind == "query.start":
            spans[event.query_id] = {"start": event.attrs}
        elif event.kind == "sched.start":
            span = spans.get(event.query_id)
            if span is not None:
                span["sched"] = event.attrs
        elif event.kind == "query.finish":
            span = spans.get(event.query_id)
            if span is not None:
                span["finish"] = event.attrs
    for query_id, span in spans.items():
        finish = span.get("finish")
        if finish is None:
            continue  # still-streaming span: nothing to replay
        start = span["start"]
        if "sql" not in start:
            raise ReproError(
                f"query span {query_id} has no statement text; only "
                "workloads driven through the session layer (SQL text) "
                "can be captured for replay"
            )
        statement = CapturedStatement(
            sql=start["sql"],
            params=dict(start["params"]) if start.get("params") else None,
            options=start.get("options"),
            cold=bool(start.get("cold", False)),
            rows=int(finish.get("rows", 0)),
            ledger=finish["ledger"],
            query_id=query_id,
        )
        sched = span.get("sched")
        if sched is None:
            run.seeds.append(statement)
            continue
        statement.client = sched.get("client", "")
        statement.label = sched.get("label", "")
        queue = run.clients.setdefault(statement.client, [])
        queue.append(statement)
        run.weights.setdefault(statement.client,
                               int(sched.get("weight", 1)))
    return run


@dataclass
class WorkloadTrace:
    """A full capture: database setup recipe + the runs, serializable.

    ``setup`` names how to rebuild the database the workload ran
    against; the replayer understands ``{"workload": "micro",
    "num_tuples": N, "seed": S}`` (the micro-benchmark table with its
    ``c1``/``c2`` indexes, plus a catalog ``analyze``).
    """

    setup: dict
    runs: list[CapturedRun] = field(default_factory=list)

    def add_run(self, run: CapturedRun) -> "WorkloadTrace":
        self.runs.append(run)
        return self

    @property
    def statement_count(self) -> int:
        return sum(run.statement_count for run in self.runs)

    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "setup": self.setup,
            "runs": [run.to_dict() for run in self.runs],
        }

    def to_json(self) -> str:
        """Deterministic serialization: sorted keys, 2-space indent."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadTrace":
        schema = data.get("schema")
        if schema != TRACE_SCHEMA:
            raise ReproError(
                f"unsupported trace schema {schema!r} "
                f"(expected {TRACE_SCHEMA!r})"
            )
        return cls(
            setup=data["setup"],
            runs=[CapturedRun.from_dict(r) for r in data["runs"]],
        )

    @classmethod
    def load(cls, path) -> "WorkloadTrace":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
