"""Replay: re-run a captured trace and assert ledger equivalence.

``python -m repro.telemetry.replay trace.json`` rebuilds the database
from the trace's setup recipe, replays every captured run through the
real session layer (plan cache included) and the real
:class:`~repro.exec.scheduler.CooperativeScheduler`, and compares each
statement's outcome against the recording: rows must be equal, integer
ledger counters (pages, requests, buffer hits/misses) must be equal,
and the millisecond floats must match within 1e-9 relative tolerance.

The engine is deterministic — simulated clock, simulated disk, no
threads — so a faithful replay reproduces the original interleaving
*exactly*, which is what turns any captured workload into a regression
suite: a code change that shifts any per-query ledger fails the replay.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.runtime import CostLedger
from repro.telemetry.capture import (
    CapturedRun,
    CapturedStatement,
    WorkloadTrace,
    options_from_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database import Database
    from repro.exec.scheduler import WorkloadReport

#: Float tolerance for millisecond comparisons (integers are exact).
REL_TOL = 1e-9
ABS_TOL = 1e-9


def build_database(setup: dict) -> "Database":
    """Rebuild the database a trace was captured against."""
    from repro.database import Database
    from repro.workloads.micro import build_micro_table
    workload = setup.get("workload")
    if workload != "micro":
        raise ReproError(
            f"unknown trace setup workload {workload!r} "
            "(the replayer understands 'micro')"
        )
    db = Database()
    build_micro_table(db, int(setup["num_tuples"]),
                      seed=int(setup.get("seed", 42)))
    if setup.get("analyze", True):
        db.analyze()
    return db


@dataclass
class ReplayResult:
    """The verdict of replaying one trace."""

    statements: int = 0
    mismatches: list[str] = field(default_factory=list)
    reports: "list[WorkloadReport]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.ok:
            return (f"replay OK: {self.statements} statements, "
                    "every ledger reproduced exactly")
        head = "\n".join(self.mismatches[:10])
        return (f"replay FAILED: {len(self.mismatches)} of "
                f"{self.statements} statements diverged\n{head}")


def _check(recorded: CapturedStatement, rows: int, ledger: CostLedger,
           where: str, result: ReplayResult) -> None:
    result.statements += 1
    expected = CostLedger.from_dict(recorded.ledger)
    if rows != recorded.rows:
        result.mismatches.append(
            f"{where}: rows {rows} != recorded {recorded.rows}")
    elif not expected.matches(ledger, rel_tol=REL_TOL, abs_tol=ABS_TOL):
        result.mismatches.append(
            f"{where}: ledger {ledger.to_dict()} != recorded "
            f"{recorded.ledger}")


def _replay_run(db: "Database", run: CapturedRun,
                result: ReplayResult) -> None:
    from repro.exec.scheduler import CooperativeScheduler, WorkloadClient

    # One warm connection per distinct planner-options shape, so every
    # replayed statement goes through the same plan-cache keying as the
    # original (options are part of the cache key).
    connections: dict = {}
    statements: dict = {}

    def prepared(stmt: CapturedStatement):
        opts_key = tuple(sorted((stmt.options or {}).items()))
        conn = connections.get(opts_key)
        if conn is None:
            conn = db.connect(options=options_from_dict(stmt.options),
                              cold=False)
            connections[opts_key] = conn
        key = (opts_key, stmt.sql)
        handle = statements.get(key)
        if handle is None:
            handle = statements[key] = conn.prepare(stmt.sql)
        return handle

    try:
        for i, seed in enumerate(run.seeds):
            res = prepared(seed).run(seed.params, cold=seed.cold,
                                     keep_rows=False)
            ledger = CostLedger(
                io_ms=res.run.io_ms, cpu_ms=res.run.cpu_ms,
                disk=res.run.disk.snapshot(),
                buffer_hits=res.run.buffer_hits,
                buffer_misses=res.run.buffer_misses,
            )
            _check(seed, res.row_count, ledger,
                   f"{run.label}/seed[{i}]", result)
        if run.clients:
            scheduler = CooperativeScheduler(db, quantum=run.quantum)
            for name, queue in run.clients.items():
                client = WorkloadClient(name, run.weights.get(name, 1))
                for stmt in queue:
                    client.add_query(
                        stmt.label,
                        lambda s=stmt: prepared(s).execute(s.params),
                    )
                scheduler.add_client(client)
            report = scheduler.run(cold=run.cold,
                                   interleave=run.interleave)
            result.reports.append(report)
            for name, queue in run.clients.items():
                replayed = report.for_client(name)
                if len(replayed) != len(queue):
                    result.statements += len(queue)
                    result.mismatches.append(
                        f"{run.label}/{name}: {len(replayed)} queries "
                        f"replayed != recorded {len(queue)}")
                    continue
                # Closed-loop clients finish their queue in order, so
                # completion order == recorded arrival order.
                for i, (stmt, record) in enumerate(zip(queue, replayed, strict=False)):
                    _check(stmt, record.rows, record.ledger,
                           f"{run.label}/{name}[{i}]", result)
    finally:
        for conn in connections.values():
            conn.close()


def replay_trace(trace: WorkloadTrace,
                 db: "Database | None" = None) -> ReplayResult:
    """Replay every run of ``trace``; returns the per-statement verdict.

    ``db`` overrides the setup recipe (replay against an existing
    database — it must hold the same data, or every ledger diverges).
    Runs replay in capture order against the *same* database, matching
    the original single-engine flow (later runs see the buffer pool and
    plan cache exactly as the original later runs did, modulo each
    run's own ``cold`` reset).
    """
    if db is None:
        db = build_database(trace.setup)
    result = ReplayResult()
    for run in trace.runs:
        _replay_run(db, run, result)
    return result


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.replay",
        description="Re-run a captured workload trace and verify that "
                    "every per-query cost ledger is reproduced exactly.",
    )
    parser.add_argument("trace", help="path to a workload-trace/v1 JSON "
                                      "file (see repro.telemetry.capture)")
    args = parser.parse_args(argv)
    trace = WorkloadTrace.load(args.trace)
    print(f"loaded {args.trace}: {len(trace.runs)} runs, "
          f"{trace.statement_count} statements, setup={trace.setup}")
    result = replay_trace(trace)
    print(result.describe())
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
