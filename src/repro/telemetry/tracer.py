"""The structured trace layer: cheap span/event emission on hot paths.

One :class:`Tracer` lives on every :class:`~repro.runtime.EngineRuntime`
(``db.tracer`` delegates to it), **disabled by default**.  Emission
sites live in the hot paths that already compute the data — the
streaming-run ledger close, Smooth Scan's morph decisions, the plan
cache, the cooperative scheduler, the serving front's admission — and
are guarded by one attribute read (``tracer.enabled``), so the traced
engine and the untraced engine run the *same* simulated schedule: the
tracer only ever reads the shared clock, never charges it.

Event kinds emitted by the engine:

======================  =================================================
``query.start``         a :class:`~repro.exec.stats.StreamingRun` began
                        (sql/params/options attached when the statement
                        went through the session layer)
``query.finish``        the run drained, closed or died — carries the
                        final per-query ledger (io/cpu ms, pages, buffer
                        hits/misses) and rows produced
``morph.start``         a Smooth Scan execution began (policy, trigger)
``morph.trigger``       the trigger fired: Mode 0 → smooth modes, with
                        the driving statistic (tuples produced so far)
``morph.flatten``       the morphing region first grew past one page
                        (Mode 1 → Mode 2), with the driving local and
                        global selectivities
``morph.finish``        scan done: pages fetched, produced, max region
``plan_cache.hit`` / ``.miss`` / ``.invalidation`` / ``.eviction``
``sched.grant``         the cooperative scheduler granted a client one
                        slice (``weight × quantum`` batches)
``sched.start`` / ``sched.finish``
                        a scheduled workload query began/drained (joins
                        client and label onto the query span)
``admission.admit`` / ``.split`` / ``.degrade`` / ``.reject`` /
``.dequeue``            the serving front's priced verdicts (``split``
                        carries the shard-parallel re-price that fit
                        the budget)
``shard.start`` / ``shard.finish``
                        one shard of an :class:`~repro.exec.exchange.
                        Exchange` began / drained — ``finish`` carries
                        the shard's conserved ledger slice (io/cpu ms,
                        pages read, rows produced)
======================  =================================================

Every event also feeds the tracer's
:class:`~repro.telemetry.metrics.MetricsRegistry`, so counters and
latency histograms are always consistent with the event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import CostLedger
    from repro.storage.disk import SimClock


@dataclass
class TraceEvent:
    """One structured telemetry event, stamped on the simulated clock."""

    seq: int
    ts_ms: float
    kind: str
    #: The query span this event belongs to (-1: engine-level event).
    query_id: int = -1
    #: One scalar summarizing the event (rows, cost, wait — kind-specific).
    value: float = 0.0
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready shape (history-store sync, trace files)."""
        return {
            "seq": self.seq,
            "ts_ms": self.ts_ms,
            "kind": self.kind,
            "query_id": self.query_id,
            "value": self.value,
            "attrs": self.attrs,
        }


class Tracer:
    """Process-local event buffer + metrics, zero simulated cost.

    Disabled (the default) every emission site reduces to one boolean
    attribute check; enabled, events append to an in-memory buffer that
    :meth:`drain` hands to consumers (the history store, the capture
    harness).  Nothing here advances the clock or touches the disk or
    buffer pool — tracing on vs off is *simulated-cost invisible* by
    construction, which the telemetry benchmark pins.
    """

    def __init__(self, clock: "SimClock"):
        self._clock = clock
        self.enabled = False
        self.events: list[TraceEvent] = []
        self.metrics = MetricsRegistry()
        self._seq = 0
        self._next_query = 0
        #: The span whose batch is currently being pulled (set by
        #: StreamingRun.next_batch); lets operators deep in the tree —
        #: Smooth Scan's morph events — attribute to the right query.
        self.current_query_id = -1
        #: Statement context noted by the session layer, consumed by the
        #: next ``begin_query`` (the StreamingRun the statement starts).
        self._pending_statement: dict | None = None
        self._pending_client: str | None = None

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        """Start buffering events (and counting metrics)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop emission; buffered events stay until drained."""
        self.enabled = False
        self._pending_statement = None
        self._pending_client = None
        self.current_query_id = -1

    def drain(self) -> list[TraceEvent]:
        """Take (and clear) the buffered events — incremental sync."""
        events, self.events = self.events, []
        return events

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, query_id: int = -1, value: float = 0.0,
             **attrs) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        event = TraceEvent(
            seq=self._seq,
            ts_ms=self._clock.total_ms,
            kind=kind,
            query_id=query_id,
            value=value,
            attrs=attrs,
        )
        self._seq += 1
        self.events.append(event)
        self.metrics.observe_event(event)

    # -- query spans -------------------------------------------------------

    def note_statement(self, sql: str, params: object,
                       options: dict | None, cold: bool) -> None:
        """Session-layer context for the run about to start.

        Called by :meth:`~repro.api.session.Cursor.execute` and
        :meth:`~repro.api.session.Connection.run` right before they
        build the :class:`~repro.exec.stats.StreamingRun`; the next
        :meth:`begin_query` attaches it to the ``query.start`` event —
        which is what makes captured traces replayable.
        """
        if not self.enabled:
            return
        self._pending_statement = {
            "sql": sql, "params": params, "options": options, "cold": cold,
        }

    def note_client(self, client: str) -> None:
        """Attribute the next query span to ``client`` (serving front)."""
        if self.enabled:
            self._pending_client = client

    def begin_query(self, cold: bool) -> int:
        """Open a query span; returns its id (-1 while disabled)."""
        if not self.enabled:
            return -1
        qid = self._next_query
        self._next_query += 1
        attrs: dict = {"cold": cold}
        pending, self._pending_statement = self._pending_statement, None
        client, self._pending_client = self._pending_client, None
        if pending is not None:
            attrs.update(pending)
        if client is not None:
            attrs["client"] = client
        self.emit("query.start", query_id=qid, **attrs)
        return qid

    def finish_query(self, query_id: int, rows: int, partial: bool,
                     ledger: "CostLedger", error: str | None = None) -> None:
        """Close a query span with its final per-query ledger."""
        if not self.enabled or query_id < 0:
            return
        attrs = {
            "rows": rows,
            "partial": partial,
            "io_ms": ledger.io_ms,
            "cpu_ms": ledger.cpu_ms,
            "pages_read": ledger.disk.pages_read,
            "seq_pages": ledger.disk.seq_pages,
            "rand_pages": ledger.disk.rand_pages,
            "buffer_hits": ledger.buffer_hits,
            "buffer_misses": ledger.buffer_misses,
            "ledger": ledger.to_dict(),
        }
        if error is not None:
            attrs["error"] = error
        self.emit("query.finish", query_id=query_id, value=float(rows),
                  **attrs)

    # -- engine hooks ------------------------------------------------------

    def plan_cache_event(self, kind: str) -> None:
        """The :class:`~repro.optimizer.plan_cache.PlanCache` hook."""
        if self.enabled:
            self.emit(f"plan_cache.{kind}")
