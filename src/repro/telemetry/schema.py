"""Relational schemas for the self-hosted telemetry warehouse.

The history store eats its own dog food: telemetry lands in ordinary
engine tables (heap files behind the buffer pool, a B-tree index on
``query_id``) inside a dedicated warehouse :class:`~repro.database.Database`,
so every rollup is a plain SQL query through the repo's own front end.

Two tables:

* ``telemetry_queries`` — one row per finished query span, the flattened
  per-query :class:`~repro.runtime.CostLedger` plus identity (client,
  label) and timing.  This is the table the rollups aggregate.
* ``telemetry_events`` — one row per raw trace event, the full stream in
  sequence order for drill-down.

Strings are fixed-width ``CHAR`` (the engine's only string type);
booleans are 0/1 INTs.  ``bin`` is the time-rollup key, assigned at
ingest: ``floor(ts_ms / bin_ms)``.
"""

from __future__ import annotations

from repro.storage.types import Column, ColumnType, Schema

#: Table names in the warehouse database.
QUERIES_TABLE = "telemetry_queries"
EVENTS_TABLE = "telemetry_events"

#: Fixed widths for the CHAR columns (generous for this repo's labels).
CLIENT_CHARS = 16
LABEL_CHARS = 24
KIND_CHARS = 24

#: Default rollup bin width in simulated milliseconds.
DEFAULT_BIN_MS = 1000.0


def queries_schema() -> Schema:
    """One row per finished query span (ledger + identity + timing)."""
    return Schema([
        Column("run_id", ColumnType.INT),
        Column("query_id", ColumnType.INT),
        Column("client", ColumnType.CHAR, CLIENT_CHARS),
        Column("label", ColumnType.CHAR, LABEL_CHARS),
        Column("cold", ColumnType.INT),
        Column("partial", ColumnType.INT),
        Column("rows_out", ColumnType.INT),
        Column("io_ms", ColumnType.FLOAT),
        Column("cpu_ms", ColumnType.FLOAT),
        Column("total_ms", ColumnType.FLOAT),
        Column("pages_read", ColumnType.INT),
        Column("seq_pages", ColumnType.INT),
        Column("rand_pages", ColumnType.INT),
        Column("buffer_hits", ColumnType.INT),
        Column("buffer_misses", ColumnType.INT),
        Column("start_ms", ColumnType.FLOAT),
        Column("finish_ms", ColumnType.FLOAT),
        Column("bin", ColumnType.INT),
    ])


def events_schema() -> Schema:
    """One row per raw trace event, in emission order."""
    return Schema([
        Column("run_id", ColumnType.INT),
        Column("seq", ColumnType.INT),
        Column("query_id", ColumnType.INT),
        Column("kind", ColumnType.CHAR, KIND_CHARS),
        Column("ts_ms", ColumnType.FLOAT),
        Column("value", ColumnType.FLOAT),
        Column("bin", ColumnType.INT),
    ])
