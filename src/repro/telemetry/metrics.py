"""The metrics registry: counters, gauges, nearest-rank histograms.

Metrics are *derived* from the trace-event stream — the tracer feeds
every emitted event through :meth:`MetricsRegistry.observe_event` — so
the registry can never disagree with the events the history store
persists.  Histograms reuse the repo's single percentile definition
(:func:`~repro.exec.scheduler.nearest_rank_ms`, the same nearest-rank
machinery the SLA/latency reports are built on): deterministic, no
interpolation.

The text exposition (:meth:`MetricsRegistry.exposition`) is
deterministic by construction — metrics sorted by name, floats via
``repr`` — so the REPL's ``\\metrics`` meta and CI transcripts can be
compared byte-for-byte across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _fmt(value: float) -> str:
    """Deterministic number formatting: ints bare, floats via repr."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass
class Counter:
    """A monotonically-increasing count."""

    name: str
    value: int = 0

    def inc(self, by: int = 1) -> None:
        self.value += by


@dataclass
class Gauge:
    """A point-in-time value (set, not accumulated)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """A sample set summarized by nearest-rank percentiles.

    Keeps the raw observations (workloads here are thousands of
    queries, not millions) so every percentile is exact — the same
    discipline as :class:`~repro.exec.scheduler.WorkloadReport`.
    """

    name: str
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def percentile(self, pct: float) -> float:
        # Deferred import: the scheduler module sits above the runtime,
        # which owns the tracer that owns this registry.
        from repro.exec.scheduler import nearest_rank_ms
        return nearest_rank_ms(self.samples, pct)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name → metric, with event-driven updates and text exposition."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- event-driven updates ----------------------------------------------

    def observe_event(self, event) -> None:
        """Fold one :class:`~repro.telemetry.tracer.TraceEvent` in.

        The kind → metric mapping in one place, so every emission site
        stays a bare ``emit()`` call.
        """
        kind = event.kind
        self.counter("events_total").inc()
        if kind == "query.finish":
            attrs = event.attrs
            self.counter("queries_total").inc()
            self.counter("rows_produced_total").inc(attrs.get("rows", 0))
            self.counter("pages_read_total").inc(
                attrs.get("pages_read", 0))
            self.counter("buffer_hits_total").inc(
                attrs.get("buffer_hits", 0))
            self.counter("buffer_misses_total").inc(
                attrs.get("buffer_misses", 0))
            if attrs.get("partial"):
                self.counter("queries_partial_total").inc()
            self.histogram("query_io_ms").observe(attrs.get("io_ms", 0.0))
            self.histogram("query_cpu_ms").observe(attrs.get("cpu_ms", 0.0))
        elif kind.startswith("plan_cache."):
            outcome = kind.split(".", 1)[1]
            plural = "misses" if outcome == "miss" else f"{outcome}s"
            self.counter(f"plan_cache_{plural}_total").inc()
        elif kind == "morph.trigger":
            self.counter("morph_triggers_total").inc()
        elif kind == "morph.flatten":
            self.counter("morph_flattenings_total").inc()
        elif kind == "morph.finish":
            self.counter("smooth_scans_total").inc()
            self.histogram("smooth_scan_pages").observe(
                event.attrs.get("pages_fetched", 0))
        elif kind == "sched.grant":
            self.counter("sched_grants_total").inc()
        elif kind == "sched.finish":
            self.histogram("sched_latency_ms").observe(event.value)
        elif kind.startswith("admission."):
            verdict = kind.split(".", 1)[1]
            self.counter(f"admission_{verdict}s_total").inc()
            if verdict == "dequeue":
                self.histogram("admission_queue_wait_ms").observe(
                    event.value)

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot (the server ``stats`` frame ships this)."""
        return {
            "counters": {name: c.value for name, c
                         in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g
                       in sorted(self._gauges.items())},
            "histograms": {name: h.summary() for name, h
                           in sorted(self._histograms.items())},
        }

    def exposition(self) -> str:
        """The deterministic text format (``\\metrics``, artifacts).

        One line per metric, ``<type> <name> <fields>``, sorted by name
        within each type — byte-stable across identical runs.
        """
        lines = ["# repro telemetry metrics v1"]
        for name in sorted(self._counters):
            lines.append(f"counter {name} {self._counters[name].value}")
        for name in sorted(self._gauges):
            lines.append(f"gauge {name} {_fmt(self._gauges[name].value)}")
        for name in sorted(self._histograms):
            s = self._histograms[name].summary()
            lines.append(
                f"histogram {name} count={s['count']} "
                f"sum={_fmt(s['sum'])} p50={_fmt(s['p50'])} "
                f"p99={_fmt(s['p99'])}"
            )
        return "\n".join(lines)
