"""Time-binned rollup queries over the telemetry warehouse.

Every rollup here is a plain SQL string executed through the repo's own
front end against the :class:`~repro.telemetry.store.HistoryStore`
tables — the warehouse proves the engine by querying itself.  The
equality check :func:`verify_against_report` closes the loop the
telemetry experiment pins in CI: SQL aggregates over persisted spans
must agree *exactly* with the in-memory
:class:`~repro.exec.scheduler.WorkloadReport` the scheduler produced.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.telemetry.schema import QUERIES_TABLE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.scheduler import WorkloadReport
    from repro.telemetry.store import HistoryStore

#: Workload-wide totals for one run: the WorkloadReport aggregate shape.
TOTALS_SQL = f"""
    SELECT count(*) AS queries,
           sum(rows_out) AS rows_out,
           sum(io_ms) AS io_ms,
           sum(cpu_ms) AS cpu_ms,
           sum(pages_read) AS pages_read,
           sum(buffer_hits) AS buffer_hits,
           sum(buffer_misses) AS buffer_misses
    FROM {QUERIES_TABLE}
    WHERE run_id = :run_id
"""

#: Queries finished per time bin (bin = floor(finish_ms / bin_ms)).
BY_BIN_SQL = f"""
    SELECT bin,
           count(*) AS queries,
           sum(rows_out) AS rows_out,
           sum(total_ms) AS total_ms
    FROM {QUERIES_TABLE}
    WHERE run_id = :run_id
    GROUP BY bin
    ORDER BY bin
"""

#: Per-client workload shape (the concurrency mix, recovered from SQL).
BY_CLIENT_SQL = f"""
    SELECT client,
           count(*) AS queries,
           sum(rows_out) AS rows_out,
           sum(io_ms) AS io_ms,
           sum(cpu_ms) AS cpu_ms
    FROM {QUERIES_TABLE}
    WHERE run_id = :run_id
    GROUP BY client
    ORDER BY client
"""


def totals(store: "HistoryStore", run_id: int = 0) -> dict:
    """Workload-wide totals as a name → value dict."""
    with store.connect() as conn:
        result = conn.run(TOTALS_SQL, {"run_id": run_id})
    row = result.rows[0]
    names = ("queries", "rows_out", "io_ms", "cpu_ms", "pages_read",
             "buffer_hits", "buffer_misses")
    out = dict(zip(names, row, strict=False))
    if out["queries"] == 0:
        # Scalar aggregate over zero rows: sums are NULL-ish zeros here.
        out = {name: (0 if name == "queries" else 0.0) for name in names}
    return out


def by_bin(store: "HistoryStore", run_id: int = 0) -> list[dict]:
    """Per-time-bin rollup rows as dicts, in bin order."""
    with store.connect() as conn:
        result = conn.run(BY_BIN_SQL, {"run_id": run_id})
    names = ("bin", "queries", "rows_out", "total_ms")
    return [dict(zip(names, row, strict=False)) for row in result.rows]


def by_client(store: "HistoryStore", run_id: int = 0) -> list[dict]:
    """Per-client rollup rows as dicts, in client order."""
    with store.connect() as conn:
        result = conn.run(BY_CLIENT_SQL, {"run_id": run_id})
    names = ("client", "queries", "rows_out", "io_ms", "cpu_ms")
    return [dict(zip(names, row, strict=False)) for row in result.rows]


def report_totals(report: "WorkloadReport") -> dict:
    """The same aggregate shape, computed from the in-memory report."""
    records = report.records
    return {
        "queries": len(records),
        "rows_out": sum(r.rows for r in records),
        "io_ms": sum(r.ledger.io_ms for r in records),
        "cpu_ms": sum(r.ledger.cpu_ms for r in records),
        "pages_read": sum(r.ledger.disk.pages_read for r in records),
        "buffer_hits": sum(r.ledger.buffer_hits for r in records),
        "buffer_misses": sum(r.ledger.buffer_misses for r in records),
    }


def verify_against_report(store: "HistoryStore", report: "WorkloadReport",
                          run_id: int = 0, *,
                          rel_tol: float = 1e-9) -> list[str]:
    """Mismatches between SQL rollups and the in-memory report.

    Integer counters must be equal; millisecond sums must match within
    ``rel_tol`` (they are sums of identical floats, so in practice they
    are bitwise equal — the tolerance only forgives summation order).
    Returns an empty list when the warehouse agrees exactly.
    """
    sql_side = totals(store, run_id=run_id)
    mem_side = report_totals(report)
    problems = []
    for name, expected in mem_side.items():
        actual = sql_side[name]
        if isinstance(expected, int):
            ok = int(actual) == expected
        else:
            ok = math.isclose(actual, expected, rel_tol=rel_tol,
                              abs_tol=1e-9)
        if not ok:
            problems.append(f"{name}: sql={actual!r} report={expected!r}")
    sql_queries = sum(row["queries"] for row in by_bin(store, run_id=run_id))
    if sql_queries != mem_side["queries"]:
        problems.append(
            f"by_bin query count: sql={sql_queries} "
            f"report={mem_side['queries']}"
        )
    return problems
