"""The skewed table of Section VI-D ("Adjusting to Skew Distribution").

The paper's layout, scaled: the first ``dense_fraction`` of tuples all
carry ``c2 = 0`` (a dense head, physically clustered at the start of the
heap); afterwards another ``sparse_fraction`` of random tuples also get 0.
The query ``c2 = 0`` then selects slightly more than ``dense_fraction`` of
the table, with matches concentrated at the front and a sparse random
tail — the layout where Selectivity-Increase overshoots (it keeps the
large morphing region forever) while Elastic shrinks back.
"""

from __future__ import annotations

import random

from repro.database import Database
from repro.errors import WorkloadError
from repro.exec.expressions import KeyRange
from repro.storage.table import Table
from repro.storage.types import Schema
from repro.workloads.micro import MICRO_COLUMNS, VALUE_DOMAIN

#: The paper's proportions: 15M of 1.5B tuples dense (1%), 0.001% sparse.
DENSE_FRACTION = 0.01
SPARSE_FRACTION = 1e-5


def build_skew_table(db: Database, num_tuples: int,
                     dense_fraction: float = DENSE_FRACTION,
                     sparse_fraction: float = SPARSE_FRACTION,
                     name: str = "skewed", seed: int = 1337) -> Table:
    """Create the skewed table with its secondary index on ``c2``."""
    if num_tuples <= 0:
        raise WorkloadError("num_tuples must be positive")
    if not 0.0 <= dense_fraction <= 1.0:
        raise WorkloadError("dense_fraction outside [0, 1]")
    if not 0.0 <= sparse_fraction <= 1.0:
        raise WorkloadError("sparse_fraction outside [0, 1]")
    rng = random.Random(seed)
    head = int(num_tuples * dense_fraction)

    def rows():
        for i in range(num_tuples):
            if i < head:
                c2 = 0
            elif rng.random() < sparse_fraction:
                c2 = 0
            else:
                c2 = rng.randrange(1, VALUE_DOMAIN)
            yield (i, c2) + tuple(
                rng.randrange(VALUE_DOMAIN)
                for _ in range(len(MICRO_COLUMNS) - 2)
            )

    table = db.load_table(name, Schema.of_ints(MICRO_COLUMNS), rows())
    db.create_index(name, "c2")
    return table


def skew_query_range() -> KeyRange:
    """The experiment's query: all tuples with ``c2 = 0``."""
    return KeyRange.equal(0)
