"""Workload generators: micro-benchmark, skew, and TPC-H-lite."""

from repro.workloads.micro import (
    MICRO_COLUMNS,
    VALUE_DOMAIN,
    build_micro_table,
    micro_schema,
    selectivity_predicate,
    selectivity_range,
)
from repro.workloads.skew import build_skew_table, skew_query_range

__all__ = [
    "MICRO_COLUMNS",
    "VALUE_DOMAIN",
    "build_micro_table",
    "build_skew_table",
    "micro_schema",
    "selectivity_predicate",
    "selectivity_range",
    "skew_query_range",
]
