"""The micro-benchmark of Section VI-C.

A table of 10 integer columns: ``c1`` is the primary-key order number,
``c2``..``c10`` are uniform random values from ``[0, 10^5)``.  With the
24-byte tuple header the tuple is 64 bytes — the paper's 120 tuples per
8KB page.  A non-clustered index on ``c2`` drives the selectivity sweeps:

    SELECT * FROM relation WHERE c2 >= 0 AND c2 < X [ORDER BY c2 ASC]

The paper's table has 400M tuples (25GB, 3M pages); generators here take
an explicit row count and keep every geometric ratio identical, since the
evaluation sweeps are expressed in selectivity, not bytes.
"""

from __future__ import annotations

import random

from repro.database import Database
from repro.errors import WorkloadError
from repro.exec.expressions import Between, KeyRange, Predicate
from repro.storage.table import Table
from repro.storage.types import Schema

#: Value domain of the non-key columns (the paper's ``0 - 10^5``).
VALUE_DOMAIN = 100_000

MICRO_COLUMNS = tuple(f"c{i}" for i in range(1, 11))


def micro_schema() -> Schema:
    """The 10-integer-column schema."""
    return Schema.of_ints(MICRO_COLUMNS)


def build_micro_table(db: Database, num_tuples: int,
                      name: str = "micro", seed: int = 42,
                      index_columns: tuple[str, ...] = ("c1", "c2"),
                      ) -> Table:
    """Create and load the micro-benchmark table, with its indexes.

    ``c1`` gets an index standing in for the primary key; ``c2`` gets the
    non-clustered secondary index every experiment probes.
    """
    if num_tuples <= 0:
        raise WorkloadError("num_tuples must be positive")
    rng = random.Random(seed)
    domain = VALUE_DOMAIN

    def rows():
        for i in range(num_tuples):
            yield (i,) + tuple(
                rng.randrange(domain) for _ in range(len(MICRO_COLUMNS) - 1)
            )

    table = db.load_table(name, micro_schema(), rows())
    for column in index_columns:
        db.create_index(name, column)
    return table


def selectivity_range(selectivity: float) -> KeyRange:
    """The ``c2`` key range selecting ≈ ``selectivity`` of the rows.

    ``selectivity`` is a fraction in [0, 1]; the uniform domain makes
    ``c2 < selectivity × DOMAIN`` select that fraction in expectation.
    ``selectivity=0`` yields the empty range (the sweep's 0.0 point).
    """
    if not 0.0 <= selectivity <= 1.0:
        raise WorkloadError(f"selectivity {selectivity} outside [0, 1]")
    hi = round(selectivity * VALUE_DOMAIN)
    return KeyRange(lo=0, hi=hi, lo_inclusive=True, hi_inclusive=False)


def selectivity_predicate(selectivity: float) -> Predicate:
    """The full predicate form of :func:`selectivity_range`."""
    rng = selectivity_range(selectivity)
    return Between("c2", rng.lo, rng.hi, rng.lo_inclusive, rng.hi_inclusive)
