"""The 19 TPC-H queries of Figure 1 as physical plan builders.

Queries are expressed directly as operator trees (this library has no SQL
front end; access-path behaviour depends on plan structure, not parsing).
Each query function takes a :class:`TpchPlanBuilder`, which decides the
access paths according to its mode:

* ``"original"`` — no secondary-index usage: full scans + hash joins
  (Figure 1's pre-tuning baseline).
* ``"tuned"`` — cost-based: the planner picks full/index/sort scans from
  (possibly wrong) estimates, and joins become index-nested-loops when the
  estimated outer cardinality makes probing look cheap — the decisions
  that blow up in Q12/Q19 when the estimates are far off.
* ``"smooth"`` — identical join structure to ``tuned``, but every base
  scan is an eager-Elastic Smooth Scan and INLJ inners use per-key smooth
  morphing; the upper plan layers stay intact, as in Section IV.

Aggregations follow the TPC-H definitions; a few query tails (HAVING
thresholds over correlated subqueries) are simplified to fixed-constant
filters, which leaves the access-path-relevant shape — the paper's object
of study — unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.database import Database
from repro.errors import PlanningError
from repro.exec.aggregates import AggSpec, HashAggregate
from repro.exec.expressions import (
    And,
    Between,
    ColumnComparison,
    CompareOp,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    StringMatch,
    TruePredicate,
)
from repro.exec.iterator import Operator
from repro.exec.joins import HashJoin, IndexNestedLoopJoin
from repro.exec.misc import Filter, Limit, MapProject, Rename
from repro.exec.scans import FullTableScan
from repro.exec.sort import Sort
from repro.optimizer.cardinality import estimate_cardinality
from repro.optimizer.planner import Planner, PlannerOptions
from repro.optimizer.statistics import StatisticsCatalog
from repro.storage.types import Column, ColumnType, Schema
from repro.workloads.tpch.schema import date

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.query import Query

_MODES = ("original", "tuned", "smooth")


def mode_options(mode: str) -> PlannerOptions:
    """The PlannerOptions equivalent of a Figure-1 execution mode.

    ``original`` disables every secondary-index path (full scans + hash
    joins only), ``tuned`` is the cost-based default, ``smooth`` replaces
    every base access path with a Smooth Scan (§IV-B).  Feeding these to
    :meth:`~repro.optimizer.planner.Planner.plan_query` reproduces the
    same physical plans the hand-built query trees use.
    """
    if mode not in _MODES:
        raise PlanningError(f"mode must be one of {_MODES}, got {mode!r}")
    if mode == "original":
        return PlannerOptions(enable_index=False, enable_sort_scan=False,
                              enable_inlj=False)
    return PlannerOptions(enable_smooth=(mode == "smooth"))


class TpchPlanBuilder:
    """Chooses access paths and join methods for the query builders."""

    def __init__(self, db: Database, catalog: StatisticsCatalog,
                 mode: str = "tuned"):
        self.db = db
        self.catalog = catalog
        self.mode = mode
        self._planner = Planner(db, catalog, mode_options(mode))

    # -- scans ---------------------------------------------------------------

    def scan(self, table_name: str, predicate: Predicate | None = None,
             order_by: str | None = None) -> Operator:
        """An access path for one base table under the builder's mode."""
        table = self.db.table(table_name)
        predicate = predicate or TruePredicate()
        if self.mode == "original":
            op: Operator = FullTableScan(table, predicate)
            if order_by is not None:
                op = Sort(op, [order_by])
            return op
        op, _decision = self._planner.plan_scan(
            table_name, predicate, order_by=order_by
        )
        return op

    # -- joins ---------------------------------------------------------------

    def join_to(self, outer: Operator, est_outer_rows: int,
                inner_table: str, outer_key: str, inner_key: str,
                inner_predicate: Predicate | None = None) -> Operator:
        """Join ``outer`` to ``inner_table`` on an equi-key.

        In ``original`` mode this is always a hash join against a full
        scan.  Otherwise the builder compares the estimated INLJ cost
        (outer rows × probe cost) against a hash join (inner full scan +
        hashing) — using the *estimated* outer cardinality, so a bad
        estimate here is exactly what turns Q12 into a disaster.
        """
        inner = self.db.table(inner_table)
        use_inlj = (
            self.mode != "original"
            and inner.has_index(inner_key)
            and self._inlj_beats_hash(est_outer_rows, inner_table, inner_key)
        )
        if use_inlj:
            residual = None
            if inner_predicate is not None:
                residual = inner_predicate  # evaluated on the joined schema
            return IndexNestedLoopJoin(
                outer, inner, inner_key, outer_key,
                residual=residual,
                inner_access="smooth" if self.mode == "smooth" else "classic",
            )
        inner_scan = self.scan(inner_table, inner_predicate)
        return HashJoin(outer, inner_scan, [outer_key], [inner_key])

    def _inlj_beats_hash(self, est_outer_rows: int, inner_table: str,
                         inner_key: str) -> bool:
        costs = self._planner.join_method_costs(
            est_outer_rows, inner_table, inner_key
        )
        return costs["inlj"] < costs["hash"]

    # -- estimates -------------------------------------------------------------

    def estimate(self, table_name: str,
                 predicate: Predicate | None = None) -> int:
        """The optimizer's cardinality estimate for a filtered table."""
        table = self.db.table(table_name)
        return estimate_cardinality(
            self.catalog, table_name, predicate or TruePredicate(),
            fallback_rows=table.row_count,
        )


QueryBuilder = Callable[[TpchPlanBuilder], Operator]


def _sum_expr(schema: Schema, output: str, fn) -> AggSpec:
    """A sum over a computed row expression."""
    return AggSpec("sum", output, value=fn)


def _revenue(schema: Schema, output: str = "revenue") -> AggSpec:
    """``sum(l_extendedprice * (1 - l_discount))``."""
    pe = schema.index_of("l_extendedprice")
    pd = schema.index_of("l_discount")
    return AggSpec("sum", output, value=lambda r: r[pe] * (1.0 - r[pd]))


# ---------------------------------------------------------------------------
# The queries
# ---------------------------------------------------------------------------

def q1(b: TpchPlanBuilder) -> Operator:
    """Q1 Pricing Summary Report — ``l_shipdate <= 1998-09-02`` (~98%)."""
    pred = Comparison("l_shipdate", CompareOp.LE, date(1998, 9, 2))
    scan = b.scan("lineitem", pred)
    s = scan.schema
    pe, pd, pt = (s.index_of("l_extendedprice"), s.index_of("l_discount"),
                  s.index_of("l_tax"))
    agg = HashAggregate(scan, ["l_returnflag", "l_linestatus"], [
        AggSpec("sum", "sum_qty", column="l_quantity"),
        AggSpec("sum", "sum_base_price", column="l_extendedprice"),
        _sum_expr(s, "sum_disc_price", lambda r: r[pe] * (1 - r[pd])),
        _sum_expr(s, "sum_charge",
                  lambda r: r[pe] * (1 - r[pd]) * (1 + r[pt])),
        AggSpec("avg", "avg_qty", column="l_quantity"),
        AggSpec("avg", "avg_price", column="l_extendedprice"),
        AggSpec("avg", "avg_disc", column="l_discount"),
        AggSpec("count", "count_order"),
    ])
    return Sort(agg, ["l_returnflag", "l_linestatus"])


def q2(b: TpchPlanBuilder) -> Operator:
    """Q2 Minimum Cost Supplier (simplified tail: top 100 by part key)."""
    part_pred = And([
        Comparison("p_size", CompareOp.EQ, 15),
        StringMatch("p_type", "suffix", "BRASS"),
    ])
    part = b.scan("part", part_pred)
    ps = b.join_to(part, b.estimate("part", part_pred),
                   "partsupp", "p_partkey", "ps_partkey")
    supp = HashJoin(ps, b.scan("supplier"), ["ps_suppkey"], ["s_suppkey"])
    nat = HashJoin(supp, b.scan("nation"), ["s_nationkey"], ["n_nationkey"])
    reg = HashJoin(
        nat,
        b.scan("region", Comparison("r_name", CompareOp.EQ, "EUROPE")),
        ["n_regionkey"], ["r_regionkey"],
    )
    agg = HashAggregate(reg, ["p_partkey"], [
        AggSpec("min", "min_cost", column="ps_supplycost"),
    ])
    return Limit(Sort(agg, ["p_partkey"]), 100)


def q3(b: TpchPlanBuilder) -> Operator:
    """Q3 Shipping Priority — top 10 unshipped orders by revenue."""
    cutoff = date(1995, 3, 15)
    line = b.scan("lineitem", Comparison("l_shipdate", CompareOp.GT, cutoff))
    orders = b.join_to(
        line, b.estimate("lineitem",
                         Comparison("l_shipdate", CompareOp.GT, cutoff)),
        "orders", "l_orderkey", "o_orderkey",
        inner_predicate=Comparison("o_orderdate", CompareOp.LT, cutoff),
    )
    cust = HashJoin(
        orders,
        b.scan("customer",
               Comparison("c_mktsegment", CompareOp.EQ, "BUILDING")),
        ["o_custkey"], ["c_custkey"],
    )
    agg = HashAggregate(
        cust, ["o_orderkey", "o_orderdate", "o_shippriority"],
        [_revenue(cust.schema)],
    )
    return Limit(Sort(agg, [("revenue", False), ("o_orderdate", True)]), 10)


def q4(b: TpchPlanBuilder) -> Operator:
    """Q4 Order Priority Checking — LINEITEM side is ~65% selective.

    The paper's plan shape: the filtered lineitem drives a PK join into
    orders, then distinct orders are counted per priority.
    """
    line_pred = ColumnComparison("l_commitdate", CompareOp.LT,
                                 "l_receiptdate")
    line = b.scan("lineitem", line_pred)
    joined = b.join_to(
        line, b.estimate("lineitem", line_pred),
        "orders", "l_orderkey", "o_orderkey",
        inner_predicate=Between("o_orderdate", date(1993, 7, 1),
                                date(1993, 10, 1)),
    )
    distinct = HashAggregate(
        joined, ["o_orderpriority", "o_orderkey"],
        [AggSpec("count", "dup_lines")],
    )
    agg = HashAggregate(distinct, ["o_orderpriority"], [
        AggSpec("count", "order_count"),
    ])
    return Sort(agg, ["o_orderpriority"])


def q5(b: TpchPlanBuilder) -> Operator:
    """Q5 Local Supplier Volume — 6-table join, revenue per nation."""
    orders_pred = Between("o_orderdate", date(1994, 1, 1), date(1995, 1, 1))
    orders = b.scan("orders", orders_pred)
    line = b.join_to(orders, b.estimate("orders", orders_pred),
                     "lineitem", "o_orderkey", "l_orderkey")
    supp = HashJoin(line, b.scan("supplier"), ["l_suppkey"], ["s_suppkey"])
    cust = HashJoin(supp, b.scan("customer"), ["o_custkey"], ["c_custkey"])
    local = Filter(cust, ColumnComparison("c_nationkey", CompareOp.EQ,
                                          "s_nationkey"))
    nat = HashJoin(local, b.scan("nation"), ["s_nationkey"], ["n_nationkey"])
    reg = HashJoin(
        nat, b.scan("region", Comparison("r_name", CompareOp.EQ, "ASIA")),
        ["n_regionkey"], ["r_regionkey"],
    )
    agg = HashAggregate(reg, ["n_name"], [_revenue(reg.schema)])
    return Sort(agg, [("revenue", False)])


def q6(b: TpchPlanBuilder) -> Operator:
    """Q6 Forecasting Revenue Change — the ~2% single-table selection."""
    pred = And([
        Between("l_shipdate", date(1994, 1, 1), date(1995, 1, 1)),
        Between("l_discount", 0.05, 0.07, hi_inclusive=True),
        Comparison("l_quantity", CompareOp.LT, 24),
    ])
    scan = b.scan("lineitem", pred)
    s = scan.schema
    pe, pd = s.index_of("l_extendedprice"), s.index_of("l_discount")
    return HashAggregate(scan, [], [
        _sum_expr(s, "revenue", lambda r: r[pe] * r[pd]),
    ])


def q7(b: TpchPlanBuilder) -> Operator:
    """Q7 Volume Shipping — 6-table join with a two-nation filter (~30%)."""
    ship_pred = Between("l_shipdate", date(1995, 1, 1), date(1996, 12, 31),
                        hi_inclusive=True)
    line = b.scan("lineitem", ship_pred)
    supp = HashJoin(line, b.scan("supplier"), ["l_suppkey"], ["s_suppkey"])
    orders = b.join_to(supp, b.estimate("lineitem", ship_pred),
                       "orders", "l_orderkey", "o_orderkey")
    cust = HashJoin(orders, b.scan("customer"), ["o_custkey"], ["c_custkey"])
    n1 = Rename(
        b.scan("nation", InList("n_name", ("FRANCE", "GERMANY"))),
        {"n_nationkey": "n1_nationkey", "n_name": "supp_nation",
         "n_regionkey": "n1_regionkey"},
    )
    n2 = Rename(
        b.scan("nation", InList("n_name", ("FRANCE", "GERMANY"))),
        {"n_nationkey": "n2_nationkey", "n_name": "cust_nation",
         "n_regionkey": "n2_regionkey"},
    )
    j1 = HashJoin(cust, n1, ["s_nationkey"], ["n1_nationkey"])
    j2 = HashJoin(j1, n2, ["c_nationkey"], ["n2_nationkey"])
    cross = Filter(j2, Not(ColumnComparison("supp_nation", CompareOp.EQ,
                                            "cust_nation")))
    s = cross.schema
    sd = s.index_of("l_shipdate")
    year_schema = Schema(list(s.columns) + [Column("l_year", ColumnType.INT)])
    with_year = MapProject(cross, year_schema,
                           lambda r: r + (1992 + r[sd] // 365,))
    agg = HashAggregate(with_year, ["supp_nation", "cust_nation", "l_year"],
                        [_revenue(with_year.schema, "volume")])
    return Sort(agg, ["supp_nation", "cust_nation", "l_year"])


def q8(b: TpchPlanBuilder) -> Operator:
    """Q8 National Market Share (share of BRAZIL suppliers in AMERICA)."""
    part_pred = Comparison("p_type", CompareOp.EQ, "ECONOMY ANODIZED STEEL")
    part = b.scan("part", part_pred)
    line = HashJoin(part, b.scan("lineitem"), ["p_partkey"], ["l_partkey"])
    orders = b.join_to(
        line, b.estimate("part", part_pred) * 30,
        "orders", "l_orderkey", "o_orderkey",
        inner_predicate=Between("o_orderdate", date(1995, 1, 1),
                                date(1996, 12, 31), hi_inclusive=True),
    )
    cust = HashJoin(orders, b.scan("customer"), ["o_custkey"], ["c_custkey"])
    nat = HashJoin(cust, b.scan("nation"), ["c_nationkey"], ["n_nationkey"])
    reg = HashJoin(
        nat, b.scan("region", Comparison("r_name", CompareOp.EQ, "AMERICA")),
        ["n_regionkey"], ["r_regionkey"],
    )
    supp = HashJoin(reg, b.scan("supplier"), ["l_suppkey"], ["s_suppkey"])
    supp_nat = HashJoin(
        supp,
        Rename(b.scan("nation"),
               {"n_nationkey": "sn_nationkey", "n_name": "supp_nation",
                "n_regionkey": "sn_regionkey"}),
        ["s_nationkey"], ["sn_nationkey"],
    )
    s = supp_nat.schema
    od = s.index_of("o_orderdate")
    pe, pd = s.index_of("l_extendedprice"), s.index_of("l_discount")
    sn = s.index_of("supp_nation")
    year_schema = Schema(list(s.columns) + [Column("o_year", ColumnType.INT)])
    with_year = MapProject(supp_nat, year_schema,
                           lambda r: r + (1992 + r[od] // 365,))
    agg = HashAggregate(with_year, ["o_year"], [
        _sum_expr(with_year.schema, "brazil_volume",
                  lambda r: r[pe] * (1 - r[pd])
                  if r[sn] == "BRAZIL" else 0.0),
        _sum_expr(with_year.schema, "total_volume",
                  lambda r: r[pe] * (1 - r[pd])),
    ])
    share_schema = Schema([Column("o_year", ColumnType.INT),
                           Column("mkt_share", ColumnType.FLOAT)])
    share = MapProject(
        agg, share_schema,
        lambda r: (r[0], (r[1] / r[2]) if r[2] else 0.0),
    )
    return Sort(share, ["o_year"])


def q9(b: TpchPlanBuilder) -> Operator:
    """Q9 Product Type Profit — parts named *green*, profit per nation/year."""
    part_pred = StringMatch("p_name", "contains", "green")
    part = b.scan("part", part_pred)
    line = HashJoin(part, b.scan("lineitem"), ["p_partkey"], ["l_partkey"])
    ps = HashJoin(line, b.scan("partsupp"),
                  ["l_partkey", "l_suppkey"], ["ps_partkey", "ps_suppkey"])
    supp = HashJoin(ps, b.scan("supplier"), ["l_suppkey"], ["s_suppkey"])
    orders = b.join_to(supp, b.estimate("part", part_pred) * 30,
                       "orders", "l_orderkey", "o_orderkey")
    nat = HashJoin(orders, b.scan("nation"), ["s_nationkey"], ["n_nationkey"])
    s = nat.schema
    od = s.index_of("o_orderdate")
    pe, pd = s.index_of("l_extendedprice"), s.index_of("l_discount")
    pc, pq = s.index_of("ps_supplycost"), s.index_of("l_quantity")
    year_schema = Schema(list(s.columns) + [Column("o_year", ColumnType.INT)])
    with_year = MapProject(nat, year_schema,
                           lambda r: r + (1992 + r[od] // 365,))
    agg = HashAggregate(with_year, ["n_name", "o_year"], [
        _sum_expr(with_year.schema, "sum_profit",
                  lambda r: r[pe] * (1 - r[pd]) - r[pc] * r[pq]),
    ])
    return Sort(agg, [("n_name", True), ("o_year", False)])


def q10(b: TpchPlanBuilder) -> Operator:
    """Q10 Returned Item Reporting — top 20 customers by lost revenue."""
    orders_pred = Between("o_orderdate", date(1993, 10, 1), date(1994, 1, 1))
    orders = b.scan("orders", orders_pred)
    line = b.join_to(orders, b.estimate("orders", orders_pred),
                     "lineitem", "o_orderkey", "l_orderkey",
                     inner_predicate=Comparison("l_returnflag",
                                                CompareOp.EQ, "R"))
    cust = HashJoin(line, b.scan("customer"), ["o_custkey"], ["c_custkey"])
    nat = HashJoin(cust, b.scan("nation"), ["c_nationkey"], ["n_nationkey"])
    agg = HashAggregate(
        nat, ["c_custkey", "c_name", "c_acctbal", "n_name"],
        [_revenue(nat.schema)],
    )
    return Limit(Sort(agg, [("revenue", False)]), 20)


def q11(b: TpchPlanBuilder) -> Operator:
    """Q11 Important Stock (simplified HAVING: top 100 by value)."""
    ps = b.scan("partsupp")
    supp = HashJoin(ps, b.scan("supplier"), ["ps_suppkey"], ["s_suppkey"])
    nat = HashJoin(
        supp, b.scan("nation", Comparison("n_name", CompareOp.EQ, "GERMANY")),
        ["s_nationkey"], ["n_nationkey"],
    )
    s = nat.schema
    pc, pq = s.index_of("ps_supplycost"), s.index_of("ps_availqty")
    agg = HashAggregate(nat, ["ps_partkey"], [
        _sum_expr(s, "value", lambda r: r[pc] * r[pq]),
    ])
    return Limit(Sort(agg, [("value", False)]), 100)


def q12(b: TpchPlanBuilder) -> Operator:
    """Q12 Shipping Modes and Order Priority — Figure 1's ×400 disaster.

    The lineitem predicate stacks correlated conjuncts (commit < receipt,
    ship < commit, receipt-date year, shipmode IN) whose AVI estimate is
    far below the true cardinality; in tuned mode the optimizer therefore
    drives an index-nested-loop into ORDERS from a much bigger outer than
    it expected.
    """
    line_pred = And([
        InList("l_shipmode", ("MAIL", "SHIP")),
        ColumnComparison("l_commitdate", CompareOp.LT, "l_receiptdate"),
        ColumnComparison("l_shipdate", CompareOp.LT, "l_commitdate"),
        Between("l_receiptdate", date(1994, 1, 1), date(1995, 1, 1)),
    ])
    line = b.scan("lineitem", line_pred)
    joined = b.join_to(line, b.estimate("lineitem", line_pred),
                       "orders", "l_orderkey", "o_orderkey")
    s = joined.schema
    po = s.index_of("o_orderpriority")
    agg = HashAggregate(joined, ["l_shipmode"], [
        _sum_expr(s, "high_line_count",
                  lambda r: 1 if r[po] in ("1-URGENT", "2-HIGH") else 0),
        _sum_expr(s, "low_line_count",
                  lambda r: 0 if r[po] in ("1-URGENT", "2-HIGH") else 1),
    ])
    return Sort(agg, ["l_shipmode"])


def q13(b: TpchPlanBuilder) -> Operator:
    """Q13 Customer Distribution — orders per customer, including zero."""
    cust = b.scan("customer")
    joined = HashJoin(cust, b.scan("orders"),
                      ["c_custkey"], ["o_custkey"], join_type="left")
    per_cust = HashAggregate(joined, ["c_custkey"], [
        AggSpec("count", "c_count", column="o_orderkey"),
    ])
    dist = HashAggregate(per_cust, ["c_count"], [
        AggSpec("count", "custdist"),
    ])
    return Sort(dist, [("custdist", False), ("c_count", False)])


def q14(b: TpchPlanBuilder) -> Operator:
    """Q14 Promotion Effect — one shipping month (~1% of lineitem)."""
    pred = Between("l_shipdate", date(1995, 9, 1), date(1995, 10, 1))
    line = b.scan("lineitem", pred)
    joined = b.join_to(line, b.estimate("lineitem", pred),
                       "part", "l_partkey", "p_partkey")
    s = joined.schema
    pe, pd = s.index_of("l_extendedprice"), s.index_of("l_discount")
    pt = s.index_of("p_type")
    agg = HashAggregate(joined, [], [
        _sum_expr(s, "promo_revenue",
                  lambda r: r[pe] * (1 - r[pd])
                  if r[pt].startswith("PROMO") else 0.0),
        _sum_expr(s, "total_revenue", lambda r: r[pe] * (1 - r[pd])),
    ])
    out_schema = Schema([Column("promo_pct", ColumnType.FLOAT)])
    return MapProject(
        agg, out_schema,
        lambda r: ((100.0 * r[0] / r[1]) if r[1] else 0.0,),
    )


def q16(b: TpchPlanBuilder) -> Operator:
    """Q16 Parts/Supplier Relationship — distinct suppliers per part group."""
    part_pred = And([
        Not(Comparison("p_brand", CompareOp.EQ, "Brand#45")),
        Not(StringMatch("p_type", "prefix", "MEDIUM POLISHED")),
        InList("p_size", (49, 14, 23, 45, 19, 3, 36, 9)),
    ])
    part = b.scan("part", part_pred)
    ps = HashJoin(part, b.scan("partsupp"), ["p_partkey"], ["ps_partkey"])
    distinct = HashAggregate(
        ps, ["p_brand", "p_type", "p_size", "ps_suppkey"],
        [AggSpec("count", "dup")],
    )
    agg = HashAggregate(distinct, ["p_brand", "p_type", "p_size"], [
        AggSpec("count", "supplier_cnt"),
    ])
    return Sort(agg, [("supplier_cnt", False), ("p_brand", True),
                      ("p_type", True), ("p_size", True)])


def q18(b: TpchPlanBuilder) -> Operator:
    """Q18 Large Volume Customer — orders with > 300 total quantity."""
    per_order = HashAggregate(b.scan("lineitem"), ["l_orderkey"], [
        AggSpec("sum", "total_qty", column="l_quantity"),
    ])
    big = Filter(per_order, Comparison("total_qty", CompareOp.GT, 300.0))
    orders = b.join_to(big, max(1, b.estimate("orders") // 500),
                       "orders", "l_orderkey", "o_orderkey")
    cust = HashJoin(orders, b.scan("customer"), ["o_custkey"], ["c_custkey"])
    agg = HashAggregate(
        cust,
        ["c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"],
        [AggSpec("sum", "sum_qty", column="total_qty")],
    )
    return Limit(Sort(agg, [("o_totalprice", False), ("o_orderdate", True)]),
                 100)


def q19(b: TpchPlanBuilder) -> Operator:
    """Q19 Discounted Revenue — Figure 1's second disaster (×20).

    An OR of three brand/container/quantity/size conjunctions; AVI makes
    each branch look vanishingly rare, so in tuned mode the filtered part
    side looks tiny and the optimizer probes lineitem per part via the
    ``l_partkey`` tuning index.
    """
    def branch(brand: str, containers: tuple, qty_lo: float, size_hi: int):
        return And([
            Comparison("p_brand", CompareOp.EQ, brand),
            InList("p_container", containers),
            Between("p_size", 1, size_hi, hi_inclusive=True),
        ]), Between("l_quantity", qty_lo, qty_lo + 10.0, hi_inclusive=True)

    p1, l1 = branch("Brand#12",
                    ("SM CASE", "SM BOX", "SM PACK", "SM PKG"), 1.0, 5)
    p2, l2 = branch("Brand#23",
                    ("MED BAG", "MED BOX", "MED PKG", "MED PACK"), 10.0, 10)
    p3, l3 = branch("Brand#34",
                    ("LG CASE", "LG BOX", "LG PACK", "LG PKG"), 20.0, 15)
    part_pred = Or([p1, p2, p3])
    part = b.scan("part", part_pred)
    joined = b.join_to(part, b.estimate("part", part_pred),
                       "lineitem", "p_partkey", "l_partkey")
    keep = Or([
        And([Comparison("p_brand", CompareOp.EQ, "Brand#12"), l1]),
        And([Comparison("p_brand", CompareOp.EQ, "Brand#23"), l2]),
        And([Comparison("p_brand", CompareOp.EQ, "Brand#34"), l3]),
    ])
    filtered = Filter(joined, keep)
    return HashAggregate(filtered, [], [_revenue(filtered.schema)])


def q21(b: TpchPlanBuilder) -> Operator:
    """Q21 Suppliers Who Kept Orders Waiting (simplified single-supplier
    EXISTS tail) — late lineitems of F-status orders per supplier."""
    late = ColumnComparison("l_receiptdate", CompareOp.GT, "l_commitdate")
    line = b.scan("lineitem", late)
    orders = b.join_to(
        line, b.estimate("lineitem", late),
        "orders", "l_orderkey", "o_orderkey",
        inner_predicate=Comparison("o_orderstatus", CompareOp.EQ, "F"),
    )
    supp = HashJoin(orders, b.scan("supplier"), ["l_suppkey"], ["s_suppkey"])
    nat = HashJoin(
        supp,
        b.scan("nation", Comparison("n_name", CompareOp.EQ, "SAUDI ARABIA")),
        ["s_nationkey"], ["n_nationkey"],
    )
    agg = HashAggregate(nat, ["s_name"], [AggSpec("count", "numwait")])
    return Limit(Sort(agg, [("numwait", False), ("s_name", True)]), 100)


def q22(b: TpchPlanBuilder) -> Operator:
    """Q22 Global Sales Opportunity — rich customers with no orders."""
    rich = Comparison("c_acctbal", CompareOp.GT, 7000.0)
    nations = InList("c_nationkey", (7, 8, 12, 18, 22, 23, 24))
    cust = b.scan("customer", And([rich, nations]))
    no_orders = HashJoin(cust, b.scan("orders"),
                         ["c_custkey"], ["o_custkey"], join_type="anti")
    agg = HashAggregate(no_orders, ["c_nationkey"], [
        AggSpec("count", "numcust"),
        AggSpec("sum", "totacctbal", column="c_acctbal"),
    ])
    return Sort(agg, ["c_nationkey"])


#: The Figure 1 query set, in the paper's x-axis order.
FIGURE1_QUERIES: dict[str, QueryBuilder] = {
    "Q1": q1, "Q2": q2, "Q3": q3, "Q4": q4, "Q5": q5, "Q6": q6, "Q7": q7,
    "Q8": q8, "Q9": q9, "Q10": q10, "Q11": q11, "Q12": q12, "Q13": q13,
    "Q14": q14, "Q16": q16, "Q18": q18, "Q19": q19, "Q21": q21, "Q22": q22,
}

#: The Figure 4 / Table II subset with the paper's quoted selectivities.
FIGURE4_QUERIES: dict[str, tuple[QueryBuilder, str]] = {
    "Q1": (q1, "98%"),
    "Q4": (q4, "65%"),
    "Q6": (q6, "2%"),
    "Q7": (q7, "30%"),
    "Q14": (q14, "1%"),
}


def build_query(name: str, builder: TpchPlanBuilder) -> Operator:
    """Build one Figure-1 query by name."""
    try:
        return FIGURE1_QUERIES[name](builder)
    except KeyError:
        raise PlanningError(
            f"unknown TPC-H query {name!r}; "
            f"available: {sorted(FIGURE1_QUERIES)}"
        ) from None


# ---------------------------------------------------------------------------
# Declarative (fluent) definitions
# ---------------------------------------------------------------------------
#
# The queries whose shapes the fluent API can express exactly are also
# defined declaratively; the Figure 1/4 drivers run these through
# ``Database.execute`` + ``Planner.plan_query`` — the same code path
# applications use — while the rest keep their raw operator trees above.
# ``plan_query`` under :func:`mode_options` lowers each of these to the
# identical physical plan the hand-built tree produces, so measurements
# are unchanged; what's gained is the decision trail and explain().

def fluent_q1(db: Database) -> "Query":
    """Q1 as a declarative query (scan → group/aggregate → sort)."""
    s = db.table("lineitem").schema
    pe, pd, pt = (s.index_of("l_extendedprice"), s.index_of("l_discount"),
                  s.index_of("l_tax"))
    return (
        db.query("lineitem")
        .where(Comparison("l_shipdate", CompareOp.LE, date(1998, 9, 2)))
        .group_by("l_returnflag", "l_linestatus")
        .aggregate(
            AggSpec("sum", "sum_qty", column="l_quantity"),
            AggSpec("sum", "sum_base_price", column="l_extendedprice"),
            AggSpec("sum", "sum_disc_price",
                    value=lambda r: r[pe] * (1 - r[pd])),
            AggSpec("sum", "sum_charge",
                    value=lambda r: r[pe] * (1 - r[pd]) * (1 + r[pt])),
            AggSpec("avg", "avg_qty", column="l_quantity"),
            AggSpec("avg", "avg_price", column="l_extendedprice"),
            AggSpec("avg", "avg_disc", column="l_discount"),
            AggSpec("count", "count_order"),
        )
        .order_by("l_returnflag", "l_linestatus")
    )


def fluent_q6(db: Database) -> "Query":
    """Q6 as a declarative query (scan → scalar aggregate)."""
    s = db.table("lineitem").schema
    pe, pd = s.index_of("l_extendedprice"), s.index_of("l_discount")
    return (
        db.query("lineitem")
        .where(
            Between("l_shipdate", date(1994, 1, 1), date(1995, 1, 1)),
            Between("l_discount", 0.05, 0.07, hi_inclusive=True),
            Comparison("l_quantity", CompareOp.LT, 24),
        )
        .aggregate(AggSpec("sum", "revenue",
                           value=lambda r: r[pe] * r[pd]))
    )


def fluent_q14(db: Database) -> "Query":
    """Q14 as a declarative query (join → scalar aggregates → map)."""
    line = db.table("lineitem").schema
    part = db.table("part").schema
    joined = Schema(list(line.columns) + list(part.columns))
    pe, pd = joined.index_of("l_extendedprice"), joined.index_of("l_discount")
    pt = joined.index_of("p_type")
    return (
        db.query("lineitem")
        .where(Between("l_shipdate", date(1995, 9, 1), date(1995, 10, 1)))
        .join("part", on=("l_partkey", "p_partkey"))
        .aggregate(
            AggSpec("sum", "promo_revenue",
                    value=lambda r: r[pe] * (1 - r[pd])
                    if r[pt].startswith("PROMO") else 0.0),
            AggSpec("sum", "total_revenue",
                    value=lambda r: r[pe] * (1 - r[pd])),
        )
        .map(Schema([Column("promo_pct", ColumnType.FLOAT)]),
             lambda r: ((100.0 * r[0] / r[1]) if r[1] else 0.0,))
    )


#: Queries the Figure 1/4 drivers run through the declarative API.
FLUENT_QUERIES = {"Q1": fluent_q1, "Q6": fluent_q6, "Q14": fluent_q14}


# ---------------------------------------------------------------------------
# SQL definitions
# ---------------------------------------------------------------------------
#
# The same queries as SQL text, entering through ``Database.sql`` — the
# lexer → parser → binder pipeline.  Binding lowers each onto a QuerySpec
# whose physical plan is measurement-identical to the FLUENT_QUERIES
# counterpart under every mode (asserted by tests/test_sql_tpch.py):
# bound ranges merge into the same Between predicates, aggregate
# expressions compile into the same value callables, and Q14's
# promo-share arithmetic becomes the same post-aggregation MapProject.

SQL_QUERIES: dict[str, str] = {
    "Q1": """
        SELECT l_returnflag, l_linestatus,
               sum(l_quantity) AS sum_qty,
               sum(l_extendedprice) AS sum_base_price,
               sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
               sum(l_extendedprice * (1 - l_discount) * (1 + l_tax))
                   AS sum_charge,
               avg(l_quantity) AS avg_qty,
               avg(l_extendedprice) AS avg_price,
               avg(l_discount) AS avg_disc,
               count(*) AS count_order
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-09-02'
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """,
    "Q6": """
        SELECT sum(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate >= DATE '1994-01-01'
          AND l_shipdate < DATE '1995-01-01'
          AND l_discount BETWEEN 0.05 AND 0.07
          AND l_quantity < 24
    """,
    "Q14": """
        SELECT 100.0 * sum(CASE WHEN p_type LIKE 'PROMO%'
                                THEN l_extendedprice * (1 - l_discount)
                                ELSE 0.0 END)
                     / sum(l_extendedprice * (1 - l_discount)) AS promo_pct
        FROM lineitem
        JOIN part ON l_partkey = p_partkey
        WHERE l_shipdate >= DATE '1995-09-01'
          AND l_shipdate < DATE '1995-10-01'
    """,
}
