"""TPC-H-lite: schema, scaled generator, and the Figure-1 query set."""

from repro.workloads.tpch.generator import TpchTables, generate_tpch, scaled_rows
from repro.workloads.tpch.queries import (
    FIGURE1_QUERIES,
    FIGURE4_QUERIES,
    TpchPlanBuilder,
    build_query,
)
from repro.workloads.tpch.schema import TPCH_SCHEMAS, date

__all__ = [
    "FIGURE1_QUERIES",
    "FIGURE4_QUERIES",
    "TPCH_SCHEMAS",
    "TpchPlanBuilder",
    "TpchTables",
    "build_query",
    "date",
    "generate_tpch",
    "scaled_rows",
]
