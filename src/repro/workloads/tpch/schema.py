"""TPC-H schema, faithful to the spec's columns relevant to access paths.

Column names, types and (CHAR) widths follow the TPC-H specification;
columns that no Figure-1 query touches (comments, addresses, phones) are
dropped to keep tuple sizes — and therefore page counts — focused on what
the experiments measure.  Dates are stored as integer days since
1992-01-01 (the spec's ``STARTDATE``).
"""

from __future__ import annotations

from repro.storage.types import Column, ColumnType, Schema

#: Days since 1992-01-01 for the spec's date boundaries.
STARTDATE = 0                      # 1992-01-01
CURRENTDATE = 1826                 # 1995-06-17, the spec's :download:`now`
ENDDATE = 2557                     # 1998-12-31


def date(year: int, month: int = 1, day: int = 1) -> int:
    """Days since 1992-01-01 for a calendar date (1992-1998 inclusive)."""
    import datetime

    base = datetime.date(1992, 1, 1)
    return (datetime.date(year, month, day) - base).days


REGION = Schema([
    Column("r_regionkey", ColumnType.INT),
    Column("r_name", ColumnType.CHAR, 12),
])

NATION = Schema([
    Column("n_nationkey", ColumnType.INT),
    Column("n_name", ColumnType.CHAR, 15),
    Column("n_regionkey", ColumnType.INT),
])

SUPPLIER = Schema([
    Column("s_suppkey", ColumnType.INT),
    Column("s_name", ColumnType.CHAR, 18),
    Column("s_nationkey", ColumnType.INT),
    Column("s_acctbal", ColumnType.FLOAT),
])

CUSTOMER = Schema([
    Column("c_custkey", ColumnType.INT),
    Column("c_name", ColumnType.CHAR, 18),
    Column("c_nationkey", ColumnType.INT),
    Column("c_mktsegment", ColumnType.CHAR, 10),
    Column("c_acctbal", ColumnType.FLOAT),
])

PART = Schema([
    Column("p_partkey", ColumnType.INT),
    Column("p_name", ColumnType.CHAR, 22),
    Column("p_mfgr", ColumnType.CHAR, 14),
    Column("p_brand", ColumnType.CHAR, 10),
    Column("p_type", ColumnType.CHAR, 25),
    Column("p_size", ColumnType.INT),
    Column("p_container", ColumnType.CHAR, 10),
    Column("p_retailprice", ColumnType.FLOAT),
])

PARTSUPP = Schema([
    Column("ps_partkey", ColumnType.INT),
    Column("ps_suppkey", ColumnType.INT),
    Column("ps_availqty", ColumnType.INT),
    Column("ps_supplycost", ColumnType.FLOAT),
])

ORDERS = Schema([
    Column("o_orderkey", ColumnType.INT),
    Column("o_custkey", ColumnType.INT),
    Column("o_orderstatus", ColumnType.CHAR, 1),
    Column("o_totalprice", ColumnType.FLOAT),
    Column("o_orderdate", ColumnType.DATE),
    Column("o_orderpriority", ColumnType.CHAR, 15),
    Column("o_shippriority", ColumnType.INT),
])

LINEITEM = Schema([
    Column("l_orderkey", ColumnType.INT),
    Column("l_partkey", ColumnType.INT),
    Column("l_suppkey", ColumnType.INT),
    Column("l_linenumber", ColumnType.INT),
    Column("l_quantity", ColumnType.FLOAT),
    Column("l_extendedprice", ColumnType.FLOAT),
    Column("l_discount", ColumnType.FLOAT),
    Column("l_tax", ColumnType.FLOAT),
    Column("l_returnflag", ColumnType.CHAR, 1),
    Column("l_linestatus", ColumnType.CHAR, 1),
    Column("l_shipdate", ColumnType.DATE),
    Column("l_commitdate", ColumnType.DATE),
    Column("l_receiptdate", ColumnType.DATE),
    Column("l_shipinstruct", ColumnType.CHAR, 25),
    Column("l_shipmode", ColumnType.CHAR, 10),
])

#: All schemas keyed by table name.
TPCH_SCHEMAS: dict[str, Schema] = {
    "region": REGION,
    "nation": NATION,
    "supplier": SUPPLIER,
    "customer": CUSTOMER,
    "part": PART,
    "partsupp": PARTSUPP,
    "orders": ORDERS,
    "lineitem": LINEITEM,
}

#: Base row counts at scale factor 1.0, per the spec.
BASE_ROWS: dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    # lineitem rows emerge from orders × U[1,7] lines.
}
