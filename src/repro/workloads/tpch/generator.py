"""A scaled TPC-H data generator (dbgen substitute).

Generates the eight tables at a configurable scale factor with the spec's
value domains and — critically for this paper — its *correlations*:
``l_shipdate = o_orderdate + U[1,121]``, ``l_commitdate = o_orderdate +
U[30,90]``, ``l_receiptdate = l_shipdate + U[1,30]``, and return flags
tied to receipt dates.  Those correlations are what break the optimizer's
attribute-value-independence assumption in Q12/Q19-style predicates and
produce Figure 1's post-tuning disasters.

The paper runs SF 10 (~10GB); a Python reproduction runs SF 0.01–0.05 and
keeps every ratio that matters (lines per order, date windows, domain
sizes) identical, since the experiments are driven by selectivities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.database import Database
from repro.errors import WorkloadError
from repro.storage.table import Table
from repro.workloads.tpch import schema as tpch_schema

_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW")
_SHIPMODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
_INSTRUCTIONS = (
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
)
_CONTAINERS = tuple(
    f"{size} {kind}"
    for size in ("SM", "LG", "MED", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
)
_TYPE_SYLL1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
_TYPE_SYLL2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
_TYPE_SYLL3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
)
_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
_NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

#: Latest order date: ENDDATE - 151 days, so receipts stay inside 1998.
_MAX_ORDERDATE = tpch_schema.ENDDATE - 151


@dataclass
class TpchTables:
    """Handles to the eight loaded tables."""

    region: Table
    nation: Table
    supplier: Table
    customer: Table
    part: Table
    partsupp: Table
    orders: Table
    lineitem: Table
    scale_factor: float = 0.0
    extras: dict = field(default_factory=dict)

    def all_tables(self) -> list[Table]:
        """The tables in load order."""
        return [self.region, self.nation, self.supplier, self.customer,
                self.part, self.partsupp, self.orders, self.lineitem]


def scaled_rows(table_name: str, scale_factor: float) -> int:
    """Row count of one table at ``scale_factor`` (min 1)."""
    if table_name in ("region", "nation"):
        return tpch_schema.BASE_ROWS[table_name]
    base = tpch_schema.BASE_ROWS[table_name]
    return max(1, int(base * scale_factor))


def generate_tpch(db: Database, scale_factor: float = 0.01,
                  seed: int = 2015,
                  primary_key_indexes: bool = True,
                  stale_batch_cutoff: int | None = None) -> TpchTables:
    """Generate and load all eight tables into ``db``.

    With ``primary_key_indexes`` every table gets an index on its primary
    key column (orders and part PK look-ups back the INLJ plans of Q4/Q14);
    secondary "tuning" indexes are the advisor's job, not the generator's.
    ``stale_batch_cutoff`` (a day number) splits orders/lineitem into two
    chronological ingest batches; the batch-1 fraction is reported in
    ``TpchTables.extras['stale_fraction']`` for prefix-analyzing.
    """
    if scale_factor <= 0:
        raise WorkloadError("scale_factor must be positive")
    rng = random.Random(seed)

    region = db.load_table(
        "region", tpch_schema.REGION,
        ((i, _REGIONS[i]) for i in range(5)),
    )
    nation = db.load_table(
        "nation", tpch_schema.NATION,
        ((i, name, reg) for i, (name, reg) in enumerate(_NATIONS)),
    )

    n_supp = scaled_rows("supplier", scale_factor)
    supplier = db.load_table(
        "supplier", tpch_schema.SUPPLIER,
        (
            (i + 1, f"Supplier#{i + 1:09d}", rng.randrange(25),
             round(rng.uniform(-999.99, 9999.99), 2))
            for i in range(n_supp)
        ),
    )

    n_cust = scaled_rows("customer", scale_factor)
    customer = db.load_table(
        "customer", tpch_schema.CUSTOMER,
        (
            (i + 1, f"Customer#{i + 1:09d}", rng.randrange(25),
             rng.choice(_SEGMENTS),
             round(rng.uniform(-999.99, 9999.99), 2))
            for i in range(n_cust)
        ),
    )

    n_part = scaled_rows("part", scale_factor)

    def part_rows():
        for i in range(n_part):
            name = " ".join(rng.sample(_NAME_WORDS, 2))
            mfgr_id = rng.randrange(1, 6)
            brand = f"Brand#{mfgr_id}{rng.randrange(1, 6)}"
            ptype = (f"{rng.choice(_TYPE_SYLL1)} "
                     f"{rng.choice(_TYPE_SYLL2)} {rng.choice(_TYPE_SYLL3)}")
            yield (
                i + 1, name, f"Manufacturer#{mfgr_id}", brand, ptype,
                rng.randrange(1, 51), rng.choice(_CONTAINERS),
                round(900 + (i % 1000) + rng.uniform(0, 100), 2),
            )

    part = db.load_table("part", tpch_schema.PART, part_rows())

    def partsupp_rows():
        for p in range(1, n_part + 1):
            for s in range(4):
                suppkey = 1 + (p + s * (n_supp // 4 + 1)) % n_supp
                yield (p, suppkey, rng.randrange(1, 10_000),
                       round(rng.uniform(1.0, 1000.0), 2))

    partsupp = db.load_table("partsupp", tpch_schema.PARTSUPP,
                             partsupp_rows())

    # Orders are ingested in two chronological batches: everything dated
    # up to ``stale_batch_cutoff`` first (in random order within the
    # batch), then the newer orders.  Statistics collected after batch 1
    # (``TpchTables.extras['stale_fraction']``) have never seen the recent
    # date domain — the classic stale-statistics failure of the paper's
    # motivation — while batch-2 date ranges remain physically *scattered*
    # within the heap tail, so a misestimated index scan over them pays
    # real random I/O.  With ``stale_batch_cutoff=None`` dates are simply
    # random (fresh-statistics setups).
    n_orders = scaled_rows("orders", scale_factor)
    all_dates = [
        rng.randrange(tpch_schema.STARTDATE, _MAX_ORDERDATE)
        for _ in range(n_orders)
    ]
    if stale_batch_cutoff is not None:
        batch1 = [d for d in all_dates if d < stale_batch_cutoff]
        batch2 = [d for d in all_dates if d >= stale_batch_cutoff]
        rng.shuffle(batch1)
        rng.shuffle(batch2)
        order_dates = batch1 + batch2
        orders_batch1 = len(batch1)
    else:
        order_dates = all_dates
        orders_batch1 = n_orders
    lineitem_batch1 = 0
    order_rows: list[tuple] = []
    line_rows: list[tuple] = []
    for o in range(1, n_orders + 1):
        if o == orders_batch1 + 1:
            lineitem_batch1 = len(line_rows)
        custkey = rng.randrange(1, n_cust + 1)
        orderdate = order_dates[o - 1]
        n_lines = rng.randrange(1, 8)
        total = 0.0
        all_filled = True
        for ln in range(1, n_lines + 1):
            partkey = rng.randrange(1, n_part + 1)
            suppkey = 1 + (partkey + rng.randrange(4) *
                           (n_supp // 4 + 1)) % n_supp
            quantity = float(rng.randrange(1, 51))
            extended = round(quantity * (900 + partkey % 1000) / 10, 2)
            discount = round(rng.randrange(0, 11) / 100.0, 2)
            tax = round(rng.randrange(0, 9) / 100.0, 2)
            shipdate = orderdate + rng.randrange(1, 122)
            commitdate = orderdate + rng.randrange(30, 91)
            receiptdate = shipdate + rng.randrange(1, 31)
            if receiptdate <= tpch_schema.CURRENTDATE:
                returnflag = "R" if rng.random() < 0.5 else "A"
            else:
                returnflag = "N"
            linestatus = "F" if shipdate <= tpch_schema.CURRENTDATE else "O"
            if linestatus == "O":
                all_filled = False
            total += extended * (1 + tax) * (1 - discount)
            line_rows.append((
                o, partkey, suppkey, ln, quantity, extended, discount, tax,
                returnflag, linestatus, shipdate, commitdate, receiptdate,
                rng.choice(_INSTRUCTIONS), rng.choice(_SHIPMODES),
            ))
        status = "F" if all_filled else ("O" if total > 0 else "P")
        order_rows.append((
            o, custkey, status, round(total, 2), orderdate,
            rng.choice(_PRIORITIES), 0,
        ))
    if orders_batch1 >= n_orders:
        lineitem_batch1 = len(line_rows)
    orders = db.load_table("orders", tpch_schema.ORDERS, order_rows)
    lineitem = db.load_table("lineitem", tpch_schema.LINEITEM, line_rows)

    if primary_key_indexes:
        db.create_index("supplier", "s_suppkey")
        db.create_index("customer", "c_custkey")
        db.create_index("part", "p_partkey")
        db.create_index("orders", "o_orderkey")
        db.create_index("lineitem", "l_orderkey")

    return TpchTables(
        region=region, nation=nation, supplier=supplier, customer=customer,
        part=part, partsupp=partsupp, orders=orders, lineitem=lineitem,
        scale_factor=scale_factor,
        extras={
            "orders_stale_rows": orders_batch1,
            "lineitem_stale_rows": lineitem_batch1,
            "stale_fraction": orders_batch1 / max(1, n_orders),
        },
    )
