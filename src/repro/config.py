"""Engine-wide configuration.

All tunables of the simulated database engine live in one frozen dataclass so
that experiments are fully described by (workload, config) pairs.  Defaults
mirror the paper's PostgreSQL 9.2.1 setup: 8KB pages, 64-byte micro-benchmark
tuples at 120 tuples/page, a 16MB (2K-page) cap on the morphing region, and
an HDD with a 10:1 random-to-sequential page cost ratio.

The CPU cost constants encode the paper's guiding ratio that a single disk
I/O corresponds to roughly a million CPU instructions [Graefe, Modern B-Tree
Techniques]: inspecting one tuple costs about four orders of magnitude less
simulated time than one random page read.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError


@dataclass(frozen=True)
class CpuCosts:
    """Simulated CPU time, in milliseconds, charged per elementary action.

    Attributes:
        tuple_inspect: evaluating the predicate against one stored tuple.
        tuple_emit: handing one qualifying tuple to the parent operator.
        compare: one comparison inside a sort.
        hash_op: one hash/equality probe (hash join build/probe, group-by).
        cache_probe: one probe of a Smooth Scan auxiliary cache.
        cache_insert: one insert into a Smooth Scan auxiliary cache.
        buffer_hit: serving a page from the buffer pool without disk I/O.
        index_entry: advancing one (key, TID) entry along a B+-tree leaf.
        exchange_row: moving one row through an exchange merge — the
            coordinator-side cost of shard-parallel execution.
    """

    tuple_inspect: float = 2.0e-4
    tuple_emit: float = 1.0e-4
    compare: float = 1.0e-4
    hash_op: float = 1.5e-4
    cache_probe: float = 5.0e-5
    cache_insert: float = 8.0e-5
    buffer_hit: float = 5.0e-5
    index_entry: float = 5.0e-5
    exchange_row: float = 5.0e-5


@dataclass(frozen=True)
class EngineConfig:
    """Complete configuration of the simulated engine.

    Attributes:
        page_size: bytes per heap/index page (PostgreSQL default 8192).
        page_header: bytes reserved per page for the header; with 64-byte
            tuples this yields the paper's 120 tuples/page.
        tuple_header: per-tuple overhead in bytes, included in tuple size.
        buffer_pool_pages: LRU buffer capacity in pages. ``None`` sizes the
            pool lazily to 1/8 of the largest table, emulating a
            ``shared_buffers`` much smaller than the data set.
        extent_pages: pages fetched per sequential I/O request by full scans
            (OS read-ahead granularity); drives Table II request counts.
        work_mem_pages: sort memory; larger inputs use external merge sort.
        max_region_pages: Smooth Scan morphing-region cap (paper: 2K pages,
            i.e. 16MB).
        cpu: CPU cost constants.
    """

    page_size: int = 8192
    page_header: int = 512
    tuple_header: int = 24
    buffer_pool_pages: int | None = None
    extent_pages: int = 16
    work_mem_pages: int = 512
    max_region_pages: int = 2048
    cpu: CpuCosts = field(default_factory=CpuCosts)

    def __post_init__(self) -> None:
        if self.page_size <= self.page_header:
            raise ConfigError(
                f"page_size ({self.page_size}) must exceed page_header "
                f"({self.page_header})"
            )
        if self.extent_pages < 1:
            raise ConfigError("extent_pages must be >= 1")
        if self.max_region_pages < 1:
            raise ConfigError("max_region_pages must be >= 1")
        if self.work_mem_pages < 1:
            raise ConfigError("work_mem_pages must be >= 1")
        if self.buffer_pool_pages is not None and self.buffer_pool_pages < 1:
            raise ConfigError("buffer_pool_pages must be >= 1 or None")

    @property
    def usable_page_bytes(self) -> int:
        """Bytes available for tuples on one page."""
        return self.page_size - self.page_header

    def tuples_per_page(self, tuple_size: int) -> int:
        """Number of tuples of ``tuple_size`` bytes that fit on one page."""
        if tuple_size <= 0:
            raise ConfigError("tuple_size must be positive")
        capacity = self.usable_page_bytes // tuple_size
        if capacity < 1:
            raise ConfigError(
                f"tuple of {tuple_size} bytes does not fit in a "
                f"{self.usable_page_bytes}-byte page body"
            )
        return capacity

    def with_overrides(self, **changes: Any) -> "EngineConfig":
        """Return a copy of this config with ``changes`` applied."""
        return replace(self, **changes)


DEFAULT_CONFIG = EngineConfig()
