"""The engine facade: tables, indexes, buffer pool and measured runs.

A :class:`Database` is the single entry point applications use: create
tables, load rows, build indexes, then execute physical plans cold (the
paper clears all caches before each measured query).  One database owns one
simulated disk and one buffer pool, shared by every query it executes.
"""

from __future__ import annotations

from typing import Iterable

from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.context import ExecutionContext
from repro.errors import StorageError
from repro.index.btree import BTreeIndex
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskProfile, SimClock, SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.table import Table
from repro.storage.types import Row, Schema

_MIN_AUTO_BUFFER_PAGES = 64
_AUTO_BUFFER_FRACTION = 8  # shared_buffers ≈ heap size / 8


class Database:
    """An engine instance: configuration + storage + accounting."""

    def __init__(self, config: EngineConfig | None = None,
                 profile: DiskProfile | None = None):
        self.config = config or DEFAULT_CONFIG
        self.profile = profile or DiskProfile.hdd()
        self.clock = SimClock()
        self.disk = SimulatedDisk(
            profile=self.profile,
            clock=self.clock,
            page_size=self.config.page_size,
            extent_pages=self.config.extent_pages,
        )
        self.buffer = BufferPool(
            disk=self.disk,
            capacity_pages=self.config.buffer_pool_pages
            or _MIN_AUTO_BUFFER_PAGES,
            hit_cpu_ms=self.config.cpu.buffer_hit,
        )
        self.tables: dict[str, Table] = {}
        self._next_file_id = 0

    # -- schema operations --------------------------------------------------

    def _allocate_file_id(self) -> int:
        fid = self._next_file_id
        self._next_file_id += 1
        return fid

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create an empty table; raises StorageError on duplicates."""
        if name in self.tables:
            raise StorageError(f"table {name!r} already exists")
        tuple_size = schema.tuple_size(self.config.tuple_header)
        heap = HeapFile(
            file_id=self._allocate_file_id(),
            schema=schema,
            tuples_per_page=self.config.tuples_per_page(tuple_size),
        )
        table = Table(name, schema, heap)
        self.tables[name] = table
        self._autosize_buffer()
        return table

    def load_table(self, name: str, schema: Schema,
                   rows: Iterable[Row]) -> Table:
        """Create a table and bulk-append ``rows`` (no I/O is charged)."""
        table = self.create_table(name, schema)
        table.insert_many(rows)
        self._autosize_buffer()
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise StorageError(f"no table named {name!r}") from None

    def create_index(self, table_name: str, column: str,
                     name: str | None = None) -> BTreeIndex:
        """Build a secondary B+-tree on ``column`` (offline, not timed)."""
        table = self.table(table_name)
        col_pos = table.schema.index_of(column)
        key_size = table.schema.columns[col_pos].byte_size
        index = BTreeIndex(
            name=name or f"{table_name}_{column}_idx",
            file_id=self._allocate_file_id(),
            key_size=key_size,
            page_size=self.config.page_size,
        )
        index.bulk_load(
            (row[col_pos], tid) for tid, row in table.heap.iter_rows()
        )
        table.indexes[column] = index
        return index

    def drop_index(self, table_name: str, column: str) -> None:
        """Remove the secondary index on ``column`` if present."""
        self.table(table_name).indexes.pop(column, None)

    # -- execution ------------------------------------------------------

    def context(self) -> ExecutionContext:
        """A fresh charging context bound to this database's substrate."""
        return ExecutionContext(
            config=self.config,
            clock=self.clock,
            disk=self.disk,
            buffer=self.buffer,
        )

    def cold_run(self) -> ExecutionContext:
        """Reset caches, clock and I/O stats; returns a fresh context.

        Reproduces the paper's measurement discipline: "we clear database
        buffer caches as well as OS file system caches before each query".
        """
        self._autosize_buffer()
        self.buffer.reset()
        self.disk.reset()
        self.clock.reset()
        return self.context()

    # -- internals -------------------------------------------------------

    def _autosize_buffer(self) -> None:
        """Size an auto buffer pool to 1/8 of total heap pages."""
        if self.config.buffer_pool_pages is not None:
            return
        total = sum(t.num_pages for t in self.tables.values())
        self.buffer.capacity_pages = max(
            _MIN_AUTO_BUFFER_PAGES, total // _AUTO_BUFFER_FRACTION
        )
