"""The engine facade: tables, indexes, buffer pool and measured runs.

A :class:`Database` is the single entry point applications use: create
tables, load rows, build indexes, then run queries cold (the paper clears
all caches before each measured query).  One database owns one shared
:class:`~repro.runtime.EngineRuntime` — simulated clock, disk and buffer
pool plus the physical catalog — shared by every query it executes,
while each execution accounts its own costs in a private
:class:`~repro.runtime.CostLedger` (so concurrent cursors report
isolated measurements over the one contended substrate).

Queries come in two flavors:

* declarative — :meth:`Database.query` starts a fluent
  :class:`~repro.api.query.Query`; :meth:`Database.execute` lowers it
  through the cost-based planner (or "always Smooth Scan", §IV-B) and
  measures it.  This is the path applications should use.
* physical — hand-built operator trees executed via
  :func:`~repro.exec.stats.measure`, kept for experiments that pin exact
  plan shapes.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterable

from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.context import ExecutionContext
from repro.errors import StorageError
from repro.index.btree import BTreeIndex
from repro.runtime import EngineRuntime
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskProfile, SimClock, SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.table import Table
from repro.storage.types import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.query import Query
    from repro.api.result import QueryResult
    from repro.api.session import Connection
    from repro.optimizer.logical import QuerySpec
    from repro.optimizer.plan_cache import PlanCache
    from repro.optimizer.planner import PlannedQuery, PlannerOptions
    from repro.optimizer.statistics import StatisticsCatalog
    from repro.storage.sharding import ShardSet
    from repro.telemetry.tracer import Tracer

class Database:
    """An engine instance: configuration + shared runtime + accounting."""

    def __init__(self, config: EngineConfig | None = None,
                 profile: DiskProfile | None = None):
        self.config = config or DEFAULT_CONFIG
        self.profile = profile or DiskProfile.hdd()
        #: The shared physical substrate every query of this database
        #: contends on (clock, disk head, buffer pool, tables).
        self.runtime = EngineRuntime(self.config, self.profile)
        self._catalog: "StatisticsCatalog | None" = None
        self._catalog_version = 0
        self._plan_cache: "PlanCache | None" = None
        self._session: "Connection | None" = None
        #: Shard catalog: logical table name -> its registered
        #: partitioning.  Shard tables live in ``_shard_tables``, NOT in
        #: ``runtime.tables`` — they are execution artifacts of their
        #: parent, invisible to FROM clauses and buffer auto-sizing.
        self._shard_sets: dict[str, "ShardSet"] = {}
        self._shard_tables: dict[str, Table] = {}
        #: Statements compiled (lexed+parsed+bound) against this
        #: database — the counter prepared-statement tests assert on.
        self.sql_compile_count = 0

    # -- shared-runtime delegation ------------------------------------------

    @property
    def clock(self) -> SimClock:
        """The shared simulated clock (owned by the runtime)."""
        return self.runtime.clock

    @property
    def disk(self) -> SimulatedDisk:
        """The shared simulated disk (owned by the runtime)."""
        return self.runtime.disk

    @property
    def buffer(self) -> BufferPool:
        """The shared buffer pool (owned by the runtime)."""
        return self.runtime.buffer

    @property
    def tables(self) -> dict[str, Table]:
        """The physical catalog of tables (owned by the runtime)."""
        return self.runtime.tables

    @property
    def tracer(self) -> "Tracer":
        """The structured trace layer (owned by the runtime, off by
        default; ``db.tracer.enable()`` starts buffering events)."""
        return self.runtime.tracer

    # -- schema operations --------------------------------------------------

    def _allocate_file_id(self) -> int:
        return self.runtime.allocate_file_id()

    def _register_table(self, name: str, schema: Schema) -> Table:
        """Create and register an empty table (no buffer autosizing)."""
        if name in self.tables:
            raise StorageError(f"table {name!r} already exists")
        tuple_size = schema.tuple_size(self.config.tuple_header)
        heap = HeapFile(
            file_id=self._allocate_file_id(),
            schema=schema,
            tuples_per_page=self.config.tuples_per_page(tuple_size),
        )
        table = Table(name, schema, heap)
        self.tables[name] = table
        return table

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create an empty table; raises StorageError on duplicates."""
        table = self._register_table(name, schema)
        self._autosize_buffer()
        self._bump_catalog_version()
        return table

    def load_table(self, name: str, schema: Schema,
                   rows: Iterable[Row]) -> Table:
        """Create a table and bulk-append ``rows`` (no I/O is charged).

        The buffer pool is autosized once, after the load, when the
        table's final page count is known.
        """
        table = self._register_table(name, schema)
        table.insert_many(rows)
        self._autosize_buffer()
        self._bump_catalog_version()
        return table

    def append_rows(self, name: str, rows: Iterable[Row]) -> int:
        """Append rows to an existing table (offline, no I/O charged).

        Indexes are maintained incrementally and the catalog version is
        bumped (statistics may now be stale), but the buffer pool is
        *not* re-autosized: a growing table must not silently change
        the cache geometry of runs in flight.  The telemetry warehouse
        syncs events through this path.
        """
        count = self.table(name).insert_many(rows)
        self._bump_catalog_version()
        return count

    def table(self, name: str) -> Table:
        """Look up a table by name.

        Falls back to the shard catalog (``{table}#{i}`` names), so the
        planner and operators resolve shard tables through the same
        call — shard names cannot reach here from SQL text (``#`` is
        not an identifier character).  The error names the missing
        table *and* lists the known ones — the difference between a
        typo hunt and a one-glance fix when the lookup comes from SQL
        text or the fluent API.
        """
        try:
            return self.tables[name]
        except KeyError:
            shard = self._shard_tables.get(name)
            if shard is not None:
                return shard
            known = ", ".join(sorted(self.tables)) or "(no tables loaded)"
            raise StorageError(
                f"no table named {name!r}; known tables: {known}"
            ) from None

    def shard_set(self, name: str) -> "ShardSet | None":
        """The registered partitioning of ``name``, or None."""
        return self._shard_sets.get(name)

    def shard_table(self, table_name: str, num_shards: int,
                    scheme: str = "round_robin",
                    column: str | None = None) -> "ShardSet":
        """Partition a table into ``num_shards`` physical shards.

        Offline DDL, like index builds: each shard gets its own heap
        file, secondary indexes on the same columns as the parent, and
        *fresh* statistics (shards are analyzed at partition time, so
        per-shard access-path decisions start accurate even when the
        parent's statistics are stale).  Re-sharding an already
        partitioned table replaces its shard set.  The parent table is
        untouched — serial plans keep running against it — and the
        buffer pool is not re-sized (shard-parallel runs contend on the
        unsharded cache geometry, keeping measurements comparable).

        ``scheme`` is ``"round_robin"`` (default) or ``"range"``; range
        partitioning splits on ``column`` (defaulting to the parent's
        first indexed column) at row-count-balanced boundaries.
        """
        from repro.storage.sharding import ShardSet, partition_rows, \
            shard_table_name
        table = self.table(table_name)
        if table_name in self._shard_tables:
            raise StorageError(
                f"cannot shard {table_name!r}: it is itself a shard"
            )
        if scheme == "range" and column is None:
            indexed = sorted(table.indexes)
            column = indexed[0] if indexed \
                else table.schema.column_names[0]
        buckets, bounds = partition_rows(table, num_shards, scheme,
                                         column if scheme == "range"
                                         else None)
        if table_name in self._shard_sets:
            self.unshard_table(table_name)
        shards = []
        tuple_size = table.schema.tuple_size(self.config.tuple_header)
        for i, rows in enumerate(buckets):
            heap = HeapFile(
                file_id=self._allocate_file_id(),
                schema=table.schema,
                tuples_per_page=self.config.tuples_per_page(tuple_size),
            )
            shard = Table(shard_table_name(table_name, i),
                          table.schema, heap)
            shard.insert_many(rows)
            for idx_column in sorted(table.indexes):
                col_pos = table.schema.index_of(idx_column)
                key_size = table.schema.columns[col_pos].byte_size
                index = BTreeIndex(
                    name=f"{shard.name}_{idx_column}_idx",
                    file_id=self._allocate_file_id(),
                    key_size=key_size,
                    page_size=self.config.page_size,
                )
                index.bulk_load(
                    (row[col_pos], tid)
                    for tid, row in shard.heap.iter_rows()
                )
                shard.indexes[idx_column] = index
            self._shard_tables[shard.name] = shard
            self.catalog.analyze(shard)
            shards.append(shard)
        shard_set = ShardSet(table_name=table_name, scheme=scheme,
                             column=column if scheme == "range" else None,
                             shards=tuple(shards), bounds=bounds)
        self._shard_sets[table_name] = shard_set
        self._bump_catalog_version()
        return shard_set

    def unshard_table(self, table_name: str) -> None:
        """Drop a table's shard set (and its shard tables).

        Raises StorageError when the table is not partitioned,
        symmetric with :meth:`drop_index`.
        """
        shard_set = self._shard_sets.pop(table_name, None)
        if shard_set is None:
            raise StorageError(
                f"table {table_name!r} is not partitioned"
            )
        for shard in shard_set.shards:
            self._shard_tables.pop(shard.name, None)
        self._bump_catalog_version()

    def create_index(self, table_name: str, column: str,
                     name: str | None = None) -> BTreeIndex:
        """Build a secondary B+-tree on ``column`` (offline, not timed).

        Raises StorageError when the column is already indexed — silently
        replacing would orphan the old index's file id in the buffer
        pool; drop it first to rebuild.
        """
        table = self.table(table_name)
        if table.has_index(column):
            raise StorageError(
                f"table {table_name!r} already has an index on "
                f"{column!r}; drop_index() it first to rebuild"
            )
        col_pos = table.schema.index_of(column)
        key_size = table.schema.columns[col_pos].byte_size
        index = BTreeIndex(
            name=name or f"{table_name}_{column}_idx",
            file_id=self._allocate_file_id(),
            key_size=key_size,
            page_size=self.config.page_size,
        )
        index.bulk_load(
            (row[col_pos], tid) for tid, row in table.heap.iter_rows()
        )
        table.indexes[column] = index
        self._bump_catalog_version()
        return index

    def drop_index(self, table_name: str, column: str) -> None:
        """Remove the secondary index on ``column``.

        Raises StorageError when no such index exists, symmetric with
        :meth:`table` and :meth:`create_index`.
        """
        table = self.table(table_name)
        if table.indexes.pop(column, None) is None:
            raise StorageError(
                f"table {table_name!r} has no index on {column!r}"
            )
        self._bump_catalog_version()

    # -- catalog versioning and the plan cache --------------------------

    @property
    def catalog_version(self) -> int:
        """A counter that moves whenever cached plans may be stale.

        Bumped by ``create_table`` / ``load_table`` / ``create_index`` /
        ``drop_index`` (what plans are *buildable* changed) and by
        ``analyze`` / ``use_catalog`` (what the optimizer would *choose*
        changed).  The plan cache invalidates entries planned under an
        older version, so a cache hit is always a plan the current
        catalog would still admit.
        """
        return self._catalog_version

    def _bump_catalog_version(self) -> None:
        self._catalog_version += 1

    @property
    def plan_cache(self) -> "PlanCache":
        """This database's plan cache (one, shared by every connection)."""
        if self._plan_cache is None:
            from repro.optimizer.plan_cache import PlanCache
            self._plan_cache = PlanCache(
                on_event=self.tracer.plan_cache_event
            )
        return self._plan_cache

    # -- sessions -------------------------------------------------------

    def connect(self, options: "PlannerOptions | None" = None,
                cold: bool = True) -> "Connection":
        """Open a PEP-249-flavored session on this database.

        The session layer is the serving surface: ``conn.cursor()``
        streams results; ``conn.prepare(sql)`` compiles once and
        re-executes with bind parameters through the plan cache.
        """
        from repro.api.session import Connection
        return Connection(self, options=options, cold=cold)

    def _default_session(self) -> "Connection":
        """The lazily-created session backing the deprecated facades."""
        if self._session is None:
            self._session = self.connect()
        return self._session

    # -- statistics -----------------------------------------------------

    @property
    def catalog(self) -> "StatisticsCatalog":
        """The database's statistics catalog (lazily created, may be
        empty — the planner falls back to the textbook magic defaults,
        exactly the statistics-oblivious regime the paper studies)."""
        if self._catalog is None:
            from repro.optimizer.statistics import StatisticsCatalog
            self._catalog = StatisticsCatalog()
        return self._catalog

    def use_catalog(self, catalog: "StatisticsCatalog") -> None:
        """Install an externally-built statistics catalog as this
        database's own.

        Experiment setups deliberately build *stale* catalogs (analyzed
        before late data arrived); installing one here makes every
        facade entry point (``query``/``sql``/``explain``) plan against
        those wrong numbers — the regime the paper studies — without
        callers having to thread the catalog through each call.
        """
        self._catalog = catalog
        self._bump_catalog_version()

    def analyze(self, table_name: str | None = None,
                **kwargs) -> "StatisticsCatalog":
        """Collect statistics for one table (or all) into the catalog.

        Keyword arguments pass through to
        :meth:`~repro.optimizer.statistics.StatisticsCatalog.analyze`
        (sampling, prefix fractions — every way stats go stale).
        """
        tables = ([self.table(table_name)] if table_name is not None
                  else list(self.tables.values()))
        for table in tables:
            self.catalog.analyze(table, **kwargs)
        self._bump_catalog_version()
        return self.catalog

    # -- declarative execution ------------------------------------------

    def query(self, table_name: str) -> "Query":
        """Start a fluent declarative query on ``table_name``."""
        from repro.api.query import Query
        from repro.optimizer.logical import QuerySpec
        self.table(table_name)  # fail fast on unknown tables
        return Query(self, QuerySpec(table=table_name))

    def plan(self, query: "Query | QuerySpec",
             options: "PlannerOptions | None" = None,
             catalog: "StatisticsCatalog | None" = None) -> "PlannedQuery":
        """Lower a declarative query into an instrumented physical plan."""
        from repro.api.query import Query
        from repro.optimizer.planner import Planner
        spec = query.spec if isinstance(query, Query) else query
        if options is None and isinstance(query, Query):
            options = query.options
        planner = Planner(self, catalog or self.catalog, options)
        return planner.plan_query(spec)

    def execute(self, query: "Query | QuerySpec", *, cold: bool = True,
                keep_rows: bool = True,
                options: "PlannerOptions | None" = None,
                catalog: "StatisticsCatalog | None" = None
                ) -> "QueryResult":
        """Plan, execute and measure a declarative query in one call.

        ``cold=True`` reproduces the paper's measurement discipline
        (all caches dropped first); ``keep_rows=False`` counts output
        rows without materializing them, for large sweeps.
        """
        from repro.api.result import QueryResult
        from repro.exec.stats import measure
        planned = self.plan(query, options=options, catalog=catalog)
        planned.reset_counters()
        run = measure(self, planned.root, cold=cold, keep_rows=keep_rows)
        return QueryResult(planned, run)

    # -- SQL ------------------------------------------------------------

    def sql(self, text: str, *, cold: bool = True, keep_rows: bool = True,
            options: "PlannerOptions | None" = None,
            catalog: "StatisticsCatalog | None" = None
            ) -> "QueryResult | str":
        """Execute one SQL statement.  Deprecated; use :meth:`connect`.

        The historical one-call facade, kept working for existing
        callers: hint comments layer onto ``options`` and an ``EXPLAIN
        SELECT ...`` returns the rendered plan tree as a *string* (the
        ``QueryResult | str`` union the session layer was built to
        fix — ``Connection.execute`` gives EXPLAIN a result set
        instead).  Internally this now delegates to a connection, so
        repeated statements benefit from the plan cache; with an
        explicit ``catalog`` override it plans directly, uncached (the
        cache is keyed for the database's own catalog only).
        """
        warnings.warn(
            "Database.sql() is deprecated; use db.connect() and "
            "Connection/Cursor (or Connection.run) instead",
            DeprecationWarning, stacklevel=2,
        )
        if catalog is not None:
            from repro.sql import compile_statement
            bound = compile_statement(self, text)
            opts = bound.planner_options(options)
            if bound.explain:
                return self.plan(bound.spec, options=opts,
                                 catalog=catalog).render()
            return self.execute(bound.spec, cold=cold, keep_rows=keep_rows,
                                options=opts, catalog=catalog)
        return self._default_session().run(
            text, cold=cold, keep_rows=keep_rows, options=options
        )

    def explain(self, text: str,
                options: "PlannerOptions | None" = None,
                catalog: "StatisticsCatalog | None" = None) -> str:
        """The plan tree for a SQL statement, without executing it.

        Deprecated alongside :meth:`sql` (use
        ``Connection.execute("EXPLAIN ...")`` or
        ``PreparedStatement.explain``); accepts plain ``SELECT ...`` as
        well as ``EXPLAIN SELECT ...``, and still returns the bare
        rendered tree with no plan-cache line, exactly as it always did.
        """
        warnings.warn(
            "Database.explain() is deprecated; use db.connect() and "
            "cursor EXPLAIN or PreparedStatement.explain() instead",
            DeprecationWarning, stacklevel=2,
        )
        from repro.sql import compile_statement
        bound = compile_statement(self, text)
        return self.plan(bound.spec, options=bound.planner_options(options),
                         catalog=catalog).render()

    # -- physical execution ---------------------------------------------

    def context(self) -> ExecutionContext:
        """A fresh charging context (with its own private cost ledger)."""
        return ExecutionContext(config=self.config, runtime=self.runtime)

    def cold_run(self) -> ExecutionContext:
        """Reset caches, clock and I/O stats; returns a fresh context.

        Reproduces the paper's measurement discipline: "we clear database
        buffer caches as well as OS file system caches before each query".
        Delegates to :meth:`~repro.runtime.EngineRuntime.cold_start`,
        which raises :class:`~repro.errors.ExecutionError` while any
        streaming run is still live — resetting shared caches under a
        draining cursor would silently corrupt its execution.
        """
        self.runtime.cold_start()
        return self.context()

    # -- internals -------------------------------------------------------

    def _autosize_buffer(self) -> None:
        """Size an auto buffer pool to 1/8 of total heap pages."""
        self.runtime.autosize_buffer()
