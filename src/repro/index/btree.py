"""A non-clustered B+-tree secondary index.

Entries are ``(key, TID)`` pairs kept in strict ``(key, TID)`` order — the
ordering Section IV-A notes lets a system avoid the Tuple ID cache.  The
tree is physically modeled: entries are grouped into leaf pages of
``fanout`` entries, internal levels are laid out above them, and scans
charge real page reads through the buffer pool, so index I/O shows up in
the same accounting as heap I/O (Eq. (11)'s ``height``, ``card`` and
``#leaves_res`` terms all emerge from execution rather than being assumed).

The implementation is array-backed: parallel sorted lists of keys and TIDs.
Bulk loading sorts once; point inserts keep order via bisection.  This is a
deliberate simplification of node splitting — the paper only ever reads its
indexes, and layout math (fanout, height, leaf count) follows Eqs. (5)-(7)
exactly.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from repro.errors import BTreeError
from repro.index import layout
from repro.storage.types import TID

try:  # pragma: no cover - exercised implicitly when numpy is present
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Bits reserved for the slot in a packed TID code (page << SHIFT | slot).
#: Heap pages hold far fewer than 2**20 tuples, so the packing is exact
#: and code order equals ``(page_id, slot)`` tuple order.
TID_SHIFT = 20


class IndexPage:
    """Placeholder object cached by the buffer pool for index pages."""

    __slots__ = ("page_id",)

    def __init__(self, page_id: int):
        self.page_id = page_id


class BTreeIndex:
    """Array-backed B+-tree over one column of a table.

    Page-id layout within the index file: leaves occupy ids
    ``[0, #leaves)``, then each internal level follows, root last.
    """

    def __init__(self, name: str, file_id: int, key_size: int,
                 page_size: int = 8192):
        self.name = name
        self.file_id = file_id
        self.key_size = key_size
        self.page_size = page_size
        self.fanout = layout.fanout(page_size, key_size)
        self._keys: list = []
        self._tids: list[TID] = []
        self._codes = None  # packed int64 TID codes, built lazily

    # -- construction -----------------------------------------------------

    def bulk_load(self, pairs: Iterable[tuple[object, TID]]) -> None:
        """Replace the index contents with ``pairs`` (sorted internally)."""
        entries = sorted(pairs, key=lambda p: (p[0], p[1]))
        self._keys = [k for k, _ in entries]
        self._tids = [t for _, t in entries]
        self._codes = None

    def insert(self, key: object, tid: TID) -> None:
        """Insert one entry, preserving strict ``(key, TID)`` order."""
        lo = bisect_left(self._keys, key)
        hi = bisect_right(self._keys, key)
        pos = lo + bisect_left(self._tids[lo:hi], tid)
        self._keys.insert(pos, key)
        self._tids.insert(pos, tid)
        self._codes = None

    # -- geometry ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def num_leaves(self) -> int:
        """Leaf page count (``#leaves``, Eq. (6))."""
        return max(1, layout.num_leaves(len(self._keys), self.fanout))

    @property
    def height(self) -> int:
        """Tree height (``height``, Eq. (7))."""
        return layout.height(self.num_leaves, self.fanout)

    @property
    def level_sizes(self) -> list[int]:
        """Node counts per level, leaves first."""
        return layout.level_sizes(self.num_leaves, self.fanout)

    @property
    def num_pages(self) -> int:
        """Total index pages (buffer-pool protocol)."""
        return sum(self.level_sizes)

    def page(self, page_id: int) -> IndexPage:
        """Return the placeholder page object (buffer-pool protocol)."""
        if not 0 <= page_id < self.num_pages:
            raise BTreeError(
                f"index page {page_id} outside file of {self.num_pages}"
            )
        return IndexPage(page_id)  # type: ignore[return-value]

    def leaf_of_position(self, pos: int) -> int:
        """Leaf page id containing entry number ``pos``."""
        return pos // self.fanout

    def _path_page_ids(self, leaf: int) -> list[int]:
        """Page ids on the root-to-leaf path, root first, leaf last."""
        sizes = self.level_sizes
        offsets = [0]
        for s in sizes[:-1]:
            offsets.append(offsets[-1] + s)
        path = []
        node = leaf
        for level, offset in enumerate(offsets):
            if level == 0:
                path.append(offset + min(leaf, sizes[0] - 1))
            else:
                node = node // self.fanout
                path.append(offset + min(node, sizes[level] - 1))
        return list(reversed(path))

    # -- reading ----------------------------------------------------------

    def position_of(self, key: object, inclusive: bool = True) -> int:
        """First entry position with key ``>= key`` (or ``> key``)."""
        if inclusive:
            return bisect_left(self._keys, key)
        return bisect_right(self._keys, key)

    def end_position(self, key: object, inclusive: bool = False) -> int:
        """One past the last entry position with key ``< key`` (or ``<=``)."""
        if inclusive:
            return bisect_right(self._keys, key)
        return bisect_left(self._keys, key)

    def range_positions(self, lo: object | None, hi: object | None,
                        lo_inclusive: bool = True,
                        hi_inclusive: bool = False) -> tuple[int, int]:
        """Entry-position interval ``[start, end)`` for a key range."""
        start = 0 if lo is None else self.position_of(lo, lo_inclusive)
        end = (
            len(self._keys) if hi is None
            else self.end_position(hi, hi_inclusive)
        )
        return start, max(start, end)

    def entry_at(self, pos: int) -> tuple[object, TID]:
        """The ``(key, TID)`` entry at position ``pos``."""
        return self._keys[pos], self._tids[pos]

    def scan(self, ctx, lo: object | None = None, hi: object | None = None,
             lo_inclusive: bool = True,
             hi_inclusive: bool = False) -> Iterator[tuple[object, TID]]:
        """Yield ``(key, TID)`` over a key range, charging index I/O.

        Charges one page read per level for the initial root-to-leaf
        descent, then one (stream-sequential) leaf page read each time the
        scan crosses into a new leaf, plus per-entry CPU.  This reproduces
        Eq. (11)'s index-side terms.
        """
        start, end = self.range_positions(lo, hi, lo_inclusive, hi_inclusive)
        if start >= end:
            if self._keys:
                # An empty range still pays the descent that discovers it.
                self._charge_descent(ctx, min(start, len(self._keys) - 1))
            return
        self._charge_descent(ctx, start)
        current_leaf = self.leaf_of_position(start)
        for pos in range(start, end):
            leaf = self.leaf_of_position(pos)
            if leaf != current_leaf:
                ctx.buffer.get_page(self, leaf, stream_hint=True)
                current_leaf = leaf
            ctx.charge_index_entry()
            yield self._keys[pos], self._tids[pos]

    def scan_batches(self, ctx, lo: object | None = None,
                     hi: object | None = None,
                     lo_inclusive: bool = True,
                     hi_inclusive: bool = False,
                     ) -> Iterator[tuple[list, list[TID]]]:
        """Yield ``(keys, tids)`` list pairs over a key range, per leaf.

        The batch counterpart of :meth:`scan`: the same descent, leaf-read
        and per-entry CPU costs are charged, but entries are handed back
        one leaf page at a time as parallel key/TID slices, so consumers
        pay no per-entry generator resumption.
        """
        start, end = self.range_positions(lo, hi, lo_inclusive, hi_inclusive)
        if start >= end:
            if self._keys:
                # An empty range still pays the descent that discovers it.
                self._charge_descent(ctx, min(start, len(self._keys) - 1))
            return
        self._charge_descent(ctx, start)
        keys, tids, fanout = self._keys, self._tids, self.fanout
        pos = start
        while pos < end:
            leaf_end = min(end, (pos // fanout + 1) * fanout)
            ctx.charge_index_entry(leaf_end - pos)
            yield keys[pos:leaf_end], tids[pos:leaf_end]
            pos = leaf_end
            if pos < end:
                ctx.buffer.get_page(self, pos // fanout, stream_hint=True)

    def scan_codes(self, ctx, lo: object | None = None,
                   hi: object | None = None,
                   lo_inclusive: bool = True,
                   hi_inclusive: bool = False):
        """Packed TID codes over a key range, or None without numpy.

        Charge-identical to :meth:`scan_batches` — the same descent,
        leaf-read and per-entry CPU costs — but the result is one int64
        array view of ``page_id << TID_SHIFT | slot`` codes, which bulk
        consumers (SortScan's bitmap phase) can sort and group without
        touching a Python object per entry.
        """
        if _np is None:
            return None
        start, end = self.range_positions(lo, hi, lo_inclusive, hi_inclusive)
        if start >= end:
            if self._keys:
                # An empty range still pays the descent that discovers it.
                self._charge_descent(ctx, min(start, len(self._keys) - 1))
            return _np.empty(0, dtype=_np.int64)
        self._charge_descent(ctx, start)
        fanout = self.fanout
        pos = start
        while pos < end:
            leaf_end = min(end, (pos // fanout + 1) * fanout)
            ctx.charge_index_entry(leaf_end - pos)
            pos = leaf_end
            if pos < end:
                ctx.buffer.get_page(self, pos // fanout, stream_hint=True)
        return self._code_array()[start:end]

    def scan_code_batches(self, ctx, lo: object | None = None,
                          hi: object | None = None,
                          lo_inclusive: bool = True,
                          hi_inclusive: bool = False):
        """Iterator of per-leaf packed TID code slices, or None sans numpy.

        The code counterpart of :meth:`scan_batches` for consumers that
        never look at keys (Smooth Scan's eager unordered path): identical
        descent, leaf-read and per-entry charges, paid lazily as the
        consumer advances leaf by leaf.
        """
        if _np is None:
            return None
        return self._iter_code_batches(ctx, lo, hi, lo_inclusive,
                                       hi_inclusive)

    def _iter_code_batches(self, ctx, lo, hi, lo_inclusive, hi_inclusive):
        start, end = self.range_positions(lo, hi, lo_inclusive, hi_inclusive)
        if start >= end:
            if self._keys:
                # An empty range still pays the descent that discovers it.
                self._charge_descent(ctx, min(start, len(self._keys) - 1))
            return
        self._charge_descent(ctx, start)
        codes = self._code_array()
        fanout = self.fanout
        pos = start
        while pos < end:
            leaf_end = min(end, (pos // fanout + 1) * fanout)
            ctx.charge_index_entry(leaf_end - pos)
            yield codes[pos:leaf_end]
            pos = leaf_end
            if pos < end:
                ctx.buffer.get_page(self, pos // fanout, stream_hint=True)

    def _code_array(self):
        """The full packed-code array, built lazily and cached."""
        codes = self._codes
        if codes is None:
            codes = _np.fromiter(
                ((t.page_id << TID_SHIFT) | t.slot for t in self._tids),
                dtype=_np.int64, count=len(self._tids),
            )
            self._codes = codes
        return codes

    def _charge_descent(self, ctx, pos: int) -> None:
        """Charge the root-to-leaf page reads for the entry at ``pos``."""
        for pid in self._path_page_ids(self.leaf_of_position(pos)):
            ctx.buffer.get_page(self, pid)

    def lookup(self, ctx, key: object) -> Iterator[TID]:
        """Yield the TIDs of all entries equal to ``key`` (point probe)."""
        for _key, tid in self.scan(ctx, lo=key, hi=key, hi_inclusive=True):
            yield tid

    def min_key(self) -> object:
        """Smallest key; raises BTreeError when empty."""
        if not self._keys:
            raise BTreeError("index is empty")
        return self._keys[0]

    def max_key(self) -> object:
        """Largest key; raises BTreeError when empty."""
        if not self._keys:
            raise BTreeError("index is empty")
        return self._keys[-1]

    def root_key_separators(self, partitions: int) -> list:
        """Approximate key-range boundaries as seen from the root page.

        Used by the Result Cache to partition its store by key range
        (Section IV-A reads the index root to pick partition boundaries).
        Returns up to ``partitions - 1`` separator keys.
        """
        if not self._keys or partitions <= 1:
            return []
        step = max(1, len(self._keys) // partitions)
        seps = []
        for i in range(step, len(self._keys), step):
            key = self._keys[i]
            if not seps or key > seps[-1]:
                seps.append(key)
            if len(seps) >= partitions - 1:
                break
        return seps
