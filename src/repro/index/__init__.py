"""Secondary index substrate: a physically-modeled B+-tree."""

from repro.index.btree import BTreeIndex, IndexPage
from repro.index import layout

__all__ = ["BTreeIndex", "IndexPage", "layout"]
