"""B+-tree and heap layout math — Eqs. (3)–(9) of the paper.

These pure functions are shared by the physical B+-tree implementation and
the analytic cost model, so the two can never drift apart.  All equations
assume 100%-full pages, equal heap and index page sizes, and a 20% per-key
pointer overhead in internal nodes, exactly as Section V does.
"""

from __future__ import annotations

import math

from repro.errors import BTreeError


def tuples_per_page(page_size: int, page_header: int, tuple_size: int) -> int:
    """Eq. (3): ``#TP = floor(PS / TS)`` with the page header excluded."""
    if tuple_size <= 0:
        raise BTreeError("tuple_size must be positive")
    usable = page_size - page_header
    if usable < tuple_size:
        raise BTreeError("tuple does not fit in page body")
    return usable // tuple_size


def num_pages(num_tuples: int, tuples_per_page_: int) -> int:
    """Eq. (4): ``#P = ceil(#T / #TP)``."""
    if tuples_per_page_ <= 0:
        raise BTreeError("tuples_per_page must be positive")
    return math.ceil(num_tuples / tuples_per_page_)


def fanout(page_size: int, key_size: int) -> int:
    """Eq. (5): ``fanout = floor(PS / (1.2 * KS))``.

    The 1.2 factor reserves 20% of each key's space for the child pointer.
    """
    if key_size <= 0:
        raise BTreeError("key_size must be positive")
    f = math.floor(page_size / (1.2 * key_size))
    if f < 2:
        raise BTreeError(f"fanout {f} < 2; key too large for page")
    return f


def num_leaves(num_tuples: int, fanout_: int) -> int:
    """Eq. (6): ``#leaves = ceil(#T / fanout)``."""
    if fanout_ < 2:
        raise BTreeError("fanout must be >= 2")
    return math.ceil(num_tuples / fanout_)


def height(num_leaves_: int, fanout_: int) -> int:
    """Eq. (7): ``height = ceil(log_fanout(#leaves)) + 1``.

    An empty or single-leaf tree has height 1 (the root is the leaf).
    """
    if num_leaves_ <= 1:
        return 1
    return math.ceil(math.log(num_leaves_, fanout_)) + 1


def result_cardinality(selectivity: float, num_tuples: int) -> int:
    """Eq. (8): ``card = sel × #T`` (rounded to the nearest tuple)."""
    if not 0.0 <= selectivity <= 1.0:
        raise BTreeError(f"selectivity {selectivity} outside [0, 1]")
    return round(selectivity * num_tuples)


def leaves_with_results(card: int, fanout_: int) -> int:
    """Eq. (9): ``#leaves_res = ceil(card / fanout)``."""
    if fanout_ < 2:
        raise BTreeError("fanout must be >= 2")
    return math.ceil(card / fanout_)


def level_sizes(num_leaves_: int, fanout_: int) -> list[int]:
    """Node counts per level, leaves first, root (size 1) last."""
    if num_leaves_ <= 0:
        return [1]
    sizes = [num_leaves_]
    while sizes[-1] > 1:
        sizes.append(math.ceil(sizes[-1] / fanout_))
    return sizes
