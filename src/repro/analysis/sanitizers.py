"""Runtime sanitizers: dynamic checks of the accounting disciplines.

The static rules catch structural violations; these catch behavioural
ones, at runtime, on a live engine:

* :class:`LedgerSanitizer` — the unattributed-cost detector, the
  cooperative-scheduler analogue of a race detector.  Once a runtime
  starts executing queries (the first attribution window opens), every
  simulated charge must land inside *some* window, or summed per-query
  ledgers silently stop reproducing the shared totals.  The sanitizer
  hooks the runtime's clock charges and diffs the integer disk/buffer
  counters across window boundaries, so both millisecond charges and
  counter bumps that happen between windows are caught and attributed
  to a call site.
* :class:`DeterminismSanitizer` — the double-run hasher.  Anything
  that feeds a committed artifact (report text, trace event streams)
  must hash identically across independent runs; a mismatch means
  wall-clock, unseeded randomness or unordered iteration leaked in.

Both are opt-in: explicitly constructed in tests, or armed suite-wide
through the ``--sanitize={ledger,determinism,all}`` pytest flag (see
the root ``conftest.py``), which CI enables for a tier-1 subset.
"""

from __future__ import annotations

import hashlib
import json
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime import EngineRuntime


class SanitizerError(AssertionError):
    """A sanitizer invariant was violated (subclass of AssertionError
    so plain ``pytest`` reporting shows the details)."""


@dataclass(frozen=True)
class SanitizerViolation:
    """One detected violation, with the call site that caused it."""

    kind: str
    detail: str
    where: str

    def render(self) -> str:
        """One-line human-readable form."""
        return f"[{self.kind}] {self.detail} (at {self.where})"


def _call_site(skip: int = 3) -> str:
    """A compact ``file:line in func`` for the offending frame.

    Walks outward past sanitizer internals to the first frame that is
    not this module — the charge's real origin.
    """
    for frame in reversed(traceback.extract_stack()[:-skip]):
        if "sanitizers.py" not in frame.filename:
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class LedgerSanitizer:
    """Detects simulated charges landing outside attribution windows.

    Installed on one :class:`~repro.runtime.EngineRuntime`; *lazy-armed*
    by the first attribution window, so setup work (bulk loads, index
    builds) before any query is exempt — exactly the phase split the
    engine's own conservation tests assume.  After arming:

    * a ``charge_io``/``charge_cpu`` while no window is open is a
      violation (millisecond charges bypass every ledger);
    * integer disk/buffer counters that moved *between* windows (diffed
      at the next ``begin_attribution``, at ``cold_start`` and at
      :meth:`check`) are a violation (counter deltas bypass the diff
      accounting).

    Use as a context manager (checks on exit), or ``install()`` /
    ``uninstall()`` + :meth:`check` by hand.  ``strict=False`` collects
    violations without raising, for suite-wide arming.
    """

    def __init__(self, runtime: "EngineRuntime", strict: bool = True):
        self.runtime = runtime
        self.strict = strict
        self.armed = False
        self.violations: list[SanitizerViolation] = []
        self._installed = False
        self._base = None

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> "LedgerSanitizer":
        """Hook the runtime's charge and window APIs (idempotent)."""
        if self._installed:
            return self
        runtime = self.runtime
        clock = runtime.clock
        orig_io, orig_cpu = clock.charge_io, clock.charge_cpu
        orig_begin = runtime.begin_attribution
        orig_end = runtime.end_attribution
        orig_cold = runtime.cold_start
        self._originals = (clock, orig_io, orig_cpu,
                           orig_begin, orig_end, orig_cold)

        def charge_io(ms: float) -> None:
            self._guard_charge("charge_io", ms)
            orig_io(ms)

        def charge_cpu(ms: float) -> None:
            self._guard_charge("charge_cpu", ms)
            orig_cpu(ms)

        def begin_attribution(ledger) -> None:
            if self.armed:
                self._check_counters("between windows")
            orig_begin(ledger)
            if not self.armed:
                self.armed = True
            self._base = None

        def end_attribution() -> None:
            orig_end()
            self._base = self._snapshot()

        def cold_start() -> None:
            # Sweep for drift first — the reset would mask it.
            if self.armed:
                self._check_counters("before cold_start")
            orig_cold()
            # A cold start legitimately zeroes every counter.
            self._base = self._snapshot()

        clock.charge_io = charge_io
        clock.charge_cpu = charge_cpu
        runtime.begin_attribution = begin_attribution
        runtime.end_attribution = end_attribution
        runtime.cold_start = cold_start
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Remove the hooks, leaving the runtime as found."""
        if not self._installed:
            return
        clock, orig_io, orig_cpu, _, _, _ = self._originals
        # The originals are bound methods; deleting the instance
        # attributes restores class-level dispatch.
        for obj, name in ((clock, "charge_io"), (clock, "charge_cpu"),
                          (self.runtime, "begin_attribution"),
                          (self.runtime, "end_attribution"),
                          (self.runtime, "cold_start")):
            try:
                delattr(obj, name)
            except AttributeError:
                pass
        self._installed = False

    def __enter__(self) -> "LedgerSanitizer":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self.check()
        finally:
            self.uninstall()

    # -- detection ---------------------------------------------------------

    def _guard_charge(self, api: str, ms: float) -> None:
        if self.armed and self.runtime._active is None:
            self._record(
                "unattributed-charge",
                f"{api}({ms:.6g} ms) outside any attribution window",
            )

    def _snapshot(self) -> tuple:
        disk = self.runtime.disk.stats
        buf = self.runtime.buffer.stats
        return (disk.requests, disk.pages_read, disk.seq_pages,
                disk.rand_pages, disk.bytes_read, disk.pages_written,
                disk.bytes_written, buf.hits, buf.misses)

    _COUNTER_NAMES = ("requests", "pages_read", "seq_pages", "rand_pages",
                      "bytes_read", "pages_written", "bytes_written",
                      "buffer_hits", "buffer_misses")

    def _check_counters(self, when: str) -> None:
        if self._base is None:
            return
        now = self._snapshot()
        if now == self._base:
            return
        moved = ", ".join(
            f"{name}{now[i] - self._base[i]:+d}"
            for i, name in enumerate(self._COUNTER_NAMES)
            if now[i] != self._base[i]
        )
        self._base = now
        self._record(
            "unattributed-counters",
            f"integer counters moved outside any window ({when}): {moved}",
        )

    def _record(self, kind: str, detail: str) -> None:
        violation = SanitizerViolation(
            kind=kind, detail=detail, where=_call_site(),
        )
        self.violations.append(violation)
        if self.strict:
            raise SanitizerError(
                "LedgerSanitizer: " + violation.render()
            )

    def check(self) -> None:
        """Final sweep: counter drift since the last window, then raise
        (in strict mode this usually raised at the violation site)."""
        if self.armed:
            self._check_counters("at check()")
        if self.violations and self.strict:
            lines = "\n  ".join(v.render() for v in self.violations)
            raise SanitizerError(
                f"LedgerSanitizer: {len(self.violations)} violation(s)\n"
                f"  {lines}"
            )


@dataclass
class DeterminismReport:
    """Outcome of a double-run comparison."""

    label: str
    hashes: list[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """True when every run hashed the same."""
        return len(set(self.hashes)) <= 1


class DeterminismSanitizer:
    """Hashes event/artifact streams across independent runs.

    ``check(factory)`` calls ``factory`` N times (default 2 — the
    double run) and hashes each returned stream canonically; any
    divergence raises :class:`SanitizerError` naming the run hashes.
    The factory must rebuild its world from scratch (fresh Database,
    fresh seeds) so the runs are genuinely independent.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.reports: list[DeterminismReport] = []

    @staticmethod
    def hash_stream(stream: object) -> str:
        """SHA-256 over a canonical encoding of ``stream``.

        Strings and bytes hash as-is; anything iterable hashes as the
        JSON of its items (objects exposing ``to_dict`` — trace events,
        ledgers — are folded through it); everything else by repr.
        """
        digest = hashlib.sha256()
        if isinstance(stream, bytes):
            digest.update(stream)
        elif isinstance(stream, str):
            digest.update(stream.encode("utf-8"))
        elif isinstance(stream, Iterable):
            for item in stream:
                to_dict = getattr(item, "to_dict", None)
                payload = to_dict() if callable(to_dict) else item
                try:
                    encoded = json.dumps(payload, sort_keys=True,
                                         default=repr)
                except TypeError:
                    encoded = repr(payload)
                digest.update(encoded.encode("utf-8"))
                digest.update(b"\x00")
        else:
            digest.update(repr(stream).encode("utf-8"))
        return digest.hexdigest()

    def check(self, factory: Callable[[], object], runs: int = 2,
              label: str = "stream") -> DeterminismReport:
        """Run ``factory`` ``runs`` times and compare the hashes."""
        report = DeterminismReport(label=label)
        for _ in range(runs):
            report.hashes.append(self.hash_stream(factory()))
        self.reports.append(report)
        if not report.identical and self.strict:
            raise SanitizerError(
                f"DeterminismSanitizer: '{label}' diverged across "
                f"{runs} runs: {report.hashes}"
            )
        return report
