"""The built-in rules: the repo's cost/determinism disciplines, encoded.

Each rule here is one invariant the reproduction's claims rest on —
simulated costs flow only through the charge APIs, attribution windows
always close, telemetry observes for free, artifacts are deterministic.
See each rule's ``rationale`` (or ``python -m repro.analysis --explain
RPLxxx``) for the discipline it enforces and the fix it expects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import (
    ModuleUnit,
    ProjectIndex,
    Rule,
    register,
)

#: Modules allowed to read the wall clock: the throughput sidecar that
#: *deliberately* measures real elapsed time (its numbers live in the
#: gitignored ``batch_throughput_wallclock.txt``, never in artifacts).
WALLCLOCK_SIDECARS = (
    "repro/experiments/batch_bench.py",
)

#: Wall-clock and entropy sources banned outside the sidecar modules.
_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.process_time": "wall-clock read",
    "time.process_time_ns": "wall-clock read",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS entropy",
}

#: ``x.now()`` / ``x.today()`` style calls flagged by trailing parts.
_BANNED_TAILS = {
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "date.today": "wall-clock read",
}


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, from this module's imports."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name != "*":
                    out[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return out


def _dotted(func: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve a call target to a dotted path through the import map."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(imports.get(node.id, node.id))
    return ".".join(reversed(parts))


@register
class WallClockRule(Rule):
    """RPL101: simulated results must not read the wall clock."""

    code = "RPL101"
    name = "no-wallclock"
    rationale = (
        "Every reported number is simulated (SimClock) so that "
        "bench_results/ artifacts are byte-identical across machines and "
        "runs.  Wall-clock reads (time.time, perf_counter, datetime.now), "
        "OS entropy (os.urandom, uuid4, secrets) and unseeded RNGs "
        "(random.random(), random.Random() without a seed, numpy.random.*) "
        "smuggle host state into results.  Use the simulated clock, a "
        "seeded random.Random(seed), or move genuine wall-clock "
        "measurement into the allowlisted sidecar modules "
        f"({', '.join(WALLCLOCK_SIDECARS)})."
    )

    def check(self, unit: ModuleUnit,
              index: ProjectIndex) -> Iterator[Diagnostic]:
        if unit.match(*WALLCLOCK_SIDECARS):
            return
        imports = _import_map(unit.tree)
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func, imports)
            if dotted is None:
                continue
            finding = self._classify(dotted, node)
            if finding is not None:
                yield self.diag(unit, node, finding)

    def _classify(self, dotted: str, node: ast.Call) -> str | None:
        if dotted in _BANNED_CALLS:
            return (f"{dotted}() is a {_BANNED_CALLS[dotted]}; simulated "
                    "results must come from the SimClock")
        for tail, what in _BANNED_TAILS.items():
            if dotted == tail or dotted.endswith("." + tail):
                return (f"{dotted}() is a {what}; simulated results must "
                        "come from the SimClock")
        if dotted.startswith("secrets."):
            return f"{dotted}() draws OS entropy; use a seeded Random"
        if dotted == "random.Random" and not (node.args or node.keywords):
            return ("random.Random() without a seed draws OS entropy; "
                    "pass an explicit seed")
        if dotted.startswith("random.") and dotted != "random.Random":
            return (f"{dotted}() uses the shared unseeded RNG; use a "
                    "seeded random.Random(seed) instance")
        if dotted.startswith("numpy.random."):
            seeded = (dotted.endswith(("default_rng", "RandomState",
                                       "SeedSequence", "Generator"))
                      and (node.args or node.keywords))
            if not seeded:
                return (f"{dotted}() is not reproducibly seeded; use "
                        "numpy.random.default_rng(seed)")
        return None


#: Builtins that consume iteration order (flagged over sets) vs those
#: that are order-insensitive (fine over sets).
_ORDER_SENSITIVE = {"list", "tuple", "enumerate", "iter", "reversed", "zip"}


class _SetTracker(ast.NodeVisitor):
    """Per-scope tracking of names that are statically set-typed."""

    def __init__(self) -> None:
        self.set_names: set = set()
        self.tainted: set = set()

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.Name):
            return (node.id in self.set_names
                    and node.id not in self.tainted)
        return False

    def note_assign(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        if self.is_set(value):
            self.set_names.add(target.id)
        elif target.id in self.set_names:
            # Reassigned to something else: no longer trustworthy.
            self.tainted.add(target.id)


@register
class UnorderedIterationRule(Rule):
    """RPL102: no order-dependent consumption of bare sets."""

    code = "RPL102"
    name = "no-unordered-iteration"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED for strings and on "
        "insertion history in general, so any set feeding artifact text, "
        "plan decisions or emitted rows makes output non-reproducible.  "
        "Iterate sorted(the_set) (or keep an ordered container) wherever "
        "order can reach output.  Order-insensitive folds (len, sum, min, "
        "max, any, all, membership) are fine.  Dict iteration is NOT "
        "flagged: Python dicts preserve insertion order."
    )

    def check(self, unit: ModuleUnit,
              index: ProjectIndex) -> Iterator[Diagnostic]:
        # Scopes: the module body plus every function body, each with
        # its own name tracking (simple, assignment-order scan).
        scopes: list[tuple[ast.AST, list[ast.stmt]]] = [
            (unit.tree, unit.tree.body)
        ]
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, node.body))
        for scope, body in scopes:
            yield from self._check_scope(unit, scope, body)

    def _check_scope(self, unit: ModuleUnit, scope: ast.AST,
                     body: list[ast.stmt]) -> Iterator[Diagnostic]:
        tracker = _SetTracker()
        # Walk the scope without descending into nested functions
        # (they are separate scopes with their own pass).
        for node in self._scope_walk(body):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    tracker.note_assign(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                tracker.note_assign(node.target, node.value)
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if tracker.is_set(node.iter):
                    yield self._flag(unit, node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                for gen in node.generators:
                    if tracker.is_set(gen.iter):
                        yield self._flag(unit, gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                yield from self._check_call(unit, tracker, node)

    def _scope_walk(self, body: list[ast.stmt]) -> Iterator[ast.AST]:
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop(0)
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function is its own scope with its own pass.
                continue
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    continue
                stack.append(child)

    def _check_call(self, unit: ModuleUnit, tracker: _SetTracker,
                    node: ast.Call) -> Iterator[Diagnostic]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE:
            for arg in node.args:
                if tracker.is_set(arg):
                    yield self._flag(unit, arg, f"{func.id}()")
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            for arg in node.args:
                if tracker.is_set(arg):
                    yield self._flag(unit, arg, "str.join()")

    def _flag(self, unit: ModuleUnit, node: ast.AST,
              where: str) -> Diagnostic:
        return self.diag(
            unit, node,
            f"set iterated in order-sensitive position ({where}); wrap "
            "in sorted(...) or use an ordered container",
        )


#: Open -> close pairings for RPL103.
_WINDOW_PAIRS = {
    "begin_attribution": "end_attribution",
    "begin_query": "finish_query",
    "begin_shard_attribution": "end_shard_attribution",
    "begin_span": "end_span",
}


@register
class WindowPairingRule(Rule):
    """RPL103: attribution windows and trace spans close in a finally."""

    code = "RPL103"
    name = "paired-windows"
    rationale = (
        "begin_attribution/end_attribution route charges into per-query "
        "ledgers; a window left open after an exception mis-attributes "
        "every later charge (and the next begin raises).  The same goes "
        "for tracer spans (begin_query/finish_query).  Every opener must "
        "have its closer in a finally block guarding it — either the "
        "opener is the statement immediately before a try whose finally "
        "closes, or it sits inside that try's body.  Lifecycles that "
        "genuinely span methods (an object opens in one method, closes "
        "in another on every exit path) are annotated "
        "# repro: allow[RPL103] with the reason."
    )

    def check(self, unit: ModuleUnit,
              index: ProjectIndex) -> Iterator[Diagnostic]:
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(unit, node)

    def _call_name(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute):
            return node.func.attr
        return None

    def _contains_call(self, nodes: list[ast.stmt], name: str) -> bool:
        for stmt in nodes:
            for node in ast.walk(stmt):
                if self._call_name(node) == name:
                    return True
        return False

    def _check_function(self, unit: ModuleUnit,
                        fn: ast.AST) -> Iterator[Diagnostic]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(fn):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        closers_present = {
            close for close in _WINDOW_PAIRS.values()
            if self._contains_call(fn.body, close)
        }
        for node in ast.walk(fn):
            opener = self._call_name(node)
            if opener not in _WINDOW_PAIRS:
                continue
            close = _WINDOW_PAIRS[opener]
            if self._is_protected(node, close, parents):
                continue
            if close in closers_present:
                yield self.diag(
                    unit, node,
                    f"{opener}() is not guarded by a finally calling "
                    f"{close}(); move the close into a finally",
                )
            else:
                yield self.diag(
                    unit, node,
                    f"{opener}() is never closed ({close}()) in this "
                    "function; close it in a finally, or annotate a "
                    "cross-method lifecycle with a reason",
                )

    def _is_protected(self, call: ast.AST, close: str,
                      parents: dict[ast.AST, ast.AST]) -> bool:
        # Case 1: the opener sits inside a try whose finally closes.
        node = call
        while node in parents:
            parent = parents[node]
            if isinstance(parent, ast.Try) and node in parent.body:
                if self._contains_call(parent.finalbody, close):
                    return True
            node = parent
        # Case 2: the opener's statement is immediately followed by a
        # try whose finally closes.
        stmt = call
        while stmt in parents and not isinstance(stmt, ast.stmt):
            stmt = parents[stmt]
        if not isinstance(stmt, ast.stmt) or stmt not in parents:
            return False
        block = self._containing_block(stmt, parents[stmt])
        if block is None:
            return False
        idx = block.index(stmt)
        if idx + 1 < len(block) and isinstance(block[idx + 1], ast.Try):
            return self._contains_call(block[idx + 1].finalbody, close)
        return False

    def _containing_block(self, stmt: ast.stmt,
                          parent: ast.AST) -> list[ast.stmt] | None:
        for name in ("body", "orelse", "finalbody"):
            block = getattr(parent, name, None)
            if isinstance(block, list) and stmt in block:
                return block
        if isinstance(parent, ast.Try):
            for handler in parent.handlers:
                if stmt in handler.body:
                    return handler.body
        return None


#: The engine's charge surface: anything that advances the simulated
#: clock or moves simulated pages.  Observation code may never call it.
_CHARGE_APIS = frozenset({
    "charge_io", "charge_cpu",
    "charge_inspect", "charge_emit", "charge_compare", "charge_hash",
    "charge_cache_probe", "charge_cache_insert", "charge_index_entry",
    "read_page", "read_run", "spill", "overflow_read", "overflow_write",
    "get_page", "get_run",
})


@register
class TelemetryNoChargeRule(Rule):
    """RPL104: telemetry observes for free — it never charges."""

    code = "RPL104"
    name = "telemetry-never-charges"
    rationale = (
        "The telemetry benchmark pins 'tracing overhead: zero simulated "
        "cost': a traced engine and an untraced engine run the identical "
        "simulated schedule, which holds only because telemetry code "
        "reads the clock and counters but never calls a charge API "
        "(charge_*, SimulatedDisk reads/writes, BufferPool page fetches).  "
        "Modules under telemetry/ that need costed execution (the history "
        "store syncing into its own engine) go through the public "
        "Database/Connection API of a *separate* engine instead."
    )

    def check(self, unit: ModuleUnit,
              index: ProjectIndex) -> Iterator[Diagnostic]:
        if not unit.in_dir("telemetry"):
            return
        for node in ast.walk(unit.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CHARGE_APIS):
                yield self.diag(
                    unit, node,
                    "telemetry module calls charge API "
                    f"{node.func.attr}(); observation must be free — "
                    "route costed work through a separate engine's "
                    "public API",
                )


#: Integer counters of the cost-accounting structs (DiskStats,
#: CostLedger, BufferStats, cache stats).  Exact conservation checks
#: (ledger sums == runtime totals) rely on these never becoming floats.
_INTEGER_COUNTERS = frozenset({
    "requests", "pages_read", "seq_pages", "rand_pages", "bytes_read",
    "pages_written", "bytes_written", "buffer_hits", "buffer_misses",
    "hits", "misses",
})


@register
class IntegerCounterRule(Rule):
    """RPL105: integer cost counters stay integral."""

    code = "RPL105"
    name = "integer-counters"
    rationale = (
        "Ledger attribution diffs integer counters across windows and the "
        "conservation tests compare them *exactly* (DiskStats dataclass "
        "equality) — a float smuggled into pages_read or buffer_hits "
        "turns exact accounting into approximate accounting and breaks "
        "byte-identical artifacts.  Mutations of the known integer "
        "counters must not involve float literals, true division (use "
        "//), or float() casts."
    )

    def check(self, unit: ModuleUnit,
              index: ProjectIndex) -> Iterator[Diagnostic]:
        for node in ast.walk(unit.tree):
            target = None
            value = None
            if isinstance(node, ast.AugAssign):
                target, value = node.target, node.value
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            if (not isinstance(target, ast.Attribute)
                    or target.attr not in _INTEGER_COUNTERS
                    or value is None):
                continue
            reason = self._float_risk(value)
            if reason is not None:
                yield self.diag(
                    unit, node,
                    f"integer counter .{target.attr} mutated with "
                    f"{reason}; exact conservation requires integer "
                    "arithmetic (use //, int())",
                )

    def _float_risk(self, value: ast.expr) -> str | None:
        for node in ast.walk(value):
            if isinstance(node, ast.Constant) and isinstance(
                    node.value, float):
                return f"a float literal ({node.value})"
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                return "true division (/)"
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "float"):
                return "a float() cast"
        return None


@register
class OperatorProtocolRule(Rule):
    """RPL106: every concrete Operator implements rows() or batches()."""

    code = "RPL106"
    name = "operator-batch-protocol"
    rationale = (
        "The Operator base class provides two-way shims between rows() "
        "and batches(); a concrete operator overriding neither only "
        "fails at runtime, deep inside a plan.  Every non-abstract "
        "Operator subclass must implement rows() or batches() somewhere "
        "in its project-visible ancestry — an operator that genuinely "
        "cannot execute defines one of them and raises "
        "NotImplementedError explicitly."
    )

    def check(self, unit: ModuleUnit,
              index: ProjectIndex) -> Iterator[Diagnostic]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = index.classes.get(node.name)
            if info is None or info.module != unit.path:
                continue
            if node.name == "Operator" or info.is_abstract:
                continue
            if not index.derives_from(node.name, "Operator"):
                continue
            methods = index.inherited_methods(node.name, stop="Operator")
            if "rows" not in methods and "batches" not in methods:
                yield self.diag(
                    unit, node,
                    f"Operator subclass {node.name} implements neither "
                    "rows() nor batches(); implement the batch protocol "
                    "or explicitly raise NotImplementedError",
                )
