"""Rule protocol, registry and the shared project index.

A rule is a class with a ``code`` (``RPL1xx``), a ``name``, a
``rationale`` (shown by ``--explain``) and a ``check`` method that
yields :class:`~repro.analysis.diagnostics.Diagnostic` objects for one
parsed module.  Rules register themselves with :func:`register`; the
engine instantiates every registered rule once per run and feeds each
analyzed module through all of them.

Two-pass analysis: before any rule runs, the engine builds a
:class:`ProjectIndex` over *all* analyzed files (class hierarchy and
method definitions), so rules that need cross-file facts — RPL106's
"does this Operator subclass inherit a ``rows``/``batches``
implementation from another module?" — see the whole tree, not one
file at a time.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterator

from repro.analysis.diagnostics import Diagnostic


@dataclass
class ModuleUnit:
    """One parsed source file, as rules see it."""

    #: Path as given on the command line (used in diagnostics).
    path: str
    #: Normalized posix-style path for allowlist suffix matching.
    posix: str
    tree: ast.Module
    source: str

    def match(self, *suffixes: str) -> bool:
        """True when this module's path ends with any of ``suffixes``."""
        return any(self.posix.endswith(s) for s in suffixes)

    def in_dir(self, name: str) -> bool:
        """True when ``name`` appears as a directory component."""
        return name in PurePosixPath(self.posix).parts[:-1]


@dataclass
class ClassInfo:
    """Cross-file view of one class definition (for RPL106)."""

    name: str
    module: str
    line: int
    bases: tuple[str, ...]
    methods: frozenset
    is_abstract: bool


@dataclass
class ProjectIndex:
    """Facts collected over every analyzed file before rules run."""

    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def add_module(self, unit: ModuleUnit) -> None:
        """Harvest class definitions from one module."""
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                base.id if isinstance(base, ast.Name) else base.attr
                for base in node.bases
                if isinstance(base, (ast.Name, ast.Attribute))
            )
            methods = frozenset(
                stmt.name for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
            is_abstract = "ABC" in bases or any(
                isinstance(d, ast.Name) and d.id == "abstractmethod"
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                for d in stmt.decorator_list
            )
            # First definition wins; duplicates across files are rare
            # enough (test helpers) that a name-keyed index suffices.
            self.classes.setdefault(node.name, ClassInfo(
                name=node.name,
                module=unit.path,
                line=node.lineno,
                bases=bases,
                methods=methods,
                is_abstract=is_abstract,
            ))

    def derives_from(self, name: str, root: str) -> bool:
        """True when class ``name`` transitively subclasses ``root``."""
        seen = set()
        stack = [name]
        while stack:
            cls = stack.pop()
            if cls == root:
                return True
            if cls in seen:
                continue
            seen.add(cls)
            info = self.classes.get(cls)
            if info is not None:
                stack.extend(info.bases)
        return False

    def inherited_methods(self, name: str, stop: str) -> set:
        """All method names ``name`` defines or inherits, up to (and
        excluding) class ``stop``."""
        out: set = set()
        seen = set()
        stack = [name]
        while stack:
            cls = stack.pop()
            if cls == stop or cls in seen:
                continue
            seen.add(cls)
            info = self.classes.get(cls)
            if info is None:
                continue
            out |= info.methods
            stack.extend(info.bases)
        return out


class Rule(ABC):
    """Base class for all lint rules."""

    #: Diagnostic code, ``RPL1xx``.
    code: str
    #: Short kebab-ish identifier shown by ``--list-rules``.
    name: str
    #: The discipline this rule encodes, shown by ``--explain``.
    rationale: str

    @abstractmethod
    def check(self, unit: ModuleUnit,
              index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield diagnostics for one module."""

    def diag(self, unit: ModuleUnit, node: ast.AST,
             message: str) -> Diagnostic:
        """Build a diagnostic anchored at ``node``."""
        return Diagnostic(
            file=unit.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


#: All registered rules, keyed by code (insertion-ordered).
REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if rule_cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in code order."""
    # Import for side effect: the built-in rules register on import.
    import repro.analysis.builtin  # noqa: F401
    return [REGISTRY[code]() for code in sorted(REGISTRY)]
