"""Command-line front end: ``python -m repro.analysis`` / ``repro-lint``.

Usage::

    python -m repro.analysis [paths ...]        # lint (default: src
                                                #   tests benchmarks
                                                #   examples, if present)
    python -m repro.analysis --format json src  # machine-readable
    python -m repro.analysis --explain RPL103   # rule rationale
    python -m repro.analysis --list-rules       # one line per rule
    python -m repro.analysis --select RPL101,RPL104 src

Exit status: 0 clean, 1 diagnostics found (including unused
suppressions), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from pathlib import Path

from repro.analysis.engine import analyze
from repro.analysis.rules import all_rules

#: Paths linted when none are given (those that exist under cwd).
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("Invariant linter for the cost/determinism "
                     "disciplines (rules RPL101-RPL106)."),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: "
             + " ".join(DEFAULT_PATHS) + ", where present)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--explain", metavar="RPLxxx",
        help="print one rule's rationale and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None,
         out=None) -> int:
    """Entry point; returns the process exit status."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    rules = all_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}", file=out)
        return 0

    if args.explain:
        for rule in rules:
            if rule.code == args.explain:
                print(f"{rule.code} ({rule.name})", file=out)
                print(file=out)
                print(textwrap.fill(rule.rationale, width=72), file=out)
                return 0
        print(f"unknown rule code: {args.explain}", file=out)
        return 2

    select = None
    if args.select:
        select = {c.strip() for c in args.select.split(",") if c.strip()}
        known = {rule.code for rule in rules}
        unknown = select - known
        if unknown:
            print("unknown rule code(s): "
                  + ", ".join(sorted(unknown)), file=out)
            return 2

    paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).is_dir()]
    if not paths:
        print("no paths to lint (and no default directory exists here)",
              file=out)
        return 2

    result = analyze(paths, select=select)

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True),
              file=out)
    else:
        for diag in result.diagnostics:
            print(diag.render(), file=out)
        summary = (
            f"{len(result.diagnostics)} finding(s) in "
            f"{result.files_checked} file(s); "
            f"{result.suppressions_used} suppression(s) in use"
        )
        print(("FAIL: " if result.diagnostics else "ok: ") + summary,
              file=out)

    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
