"""The analysis engine: discover, parse, index, check, suppress.

Runs in two passes over the target files: pass one parses every module
and feeds it to the shared :class:`~repro.analysis.rules.ProjectIndex`
(cross-file class hierarchy, for RPL106); pass two runs every
registered rule over every module, then filters the findings through
inline ``# repro: allow[...]`` suppressions — marking each suppression
that actually fired, so the leftovers can be reported as unused
(``RPL100``).  Files that fail to parse yield a single ``RPL000``
diagnostic instead of crashing the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import (
    UNUSED_SUPPRESSION,
    Diagnostic,
    Suppression,
    parse_suppressions,
)
from repro.analysis.rules import ModuleUnit, ProjectIndex, all_rules

#: Code reported when a target file does not parse.
PARSE_ERROR = "RPL000"

#: Directory names never descended into.  ``analysis_fixtures`` holds
#: the linter's own deliberately-bad test snippets.
DEFAULT_EXCLUDES = frozenset({
    "__pycache__", ".git", ".claude", "analysis_fixtures",
    "bench_results", ".pytest_cache", "build", "dist",
})


@dataclass
class AnalysisResult:
    """Everything one run produced."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressions_used: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing was found (the CI gate)."""
        return not self.diagnostics

    def to_dict(self) -> dict:
        """JSON-ready shape for ``--format json``."""
        return {
            "files_checked": self.files_checked,
            "suppressions_used": self.suppressions_used,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "clean": self.clean,
        }


def discover(paths: list[str],
             excludes: frozenset = DEFAULT_EXCLUDES) -> list[Path]:
    """Every ``.py`` file under ``paths``, exclusions applied, sorted."""
    out: set = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            out.add(path)
            continue
        for sub in path.rglob("*.py"):
            if not any(part in excludes for part in sub.parts):
                out.add(sub)
    return sorted(out)


def _load(path: Path) -> tuple[ModuleUnit | None, Diagnostic | None]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Diagnostic(
            file=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code=PARSE_ERROR,
            message=f"syntax error: {exc.msg}",
        )
    return ModuleUnit(
        path=str(path),
        posix=path.as_posix(),
        tree=tree,
        source=source,
    ), None


def analyze(paths: list[str], select: set | None = None,
            excludes: frozenset = DEFAULT_EXCLUDES) -> AnalysisResult:
    """Run every registered rule over every file under ``paths``.

    ``select`` restricts checking to the given rule codes (suppression
    accounting follows: an allow for an unselected code is not reported
    as unused, since it never had the chance to fire).
    """
    result = AnalysisResult()
    units: list[ModuleUnit] = []
    suppressions: dict[str, dict[int, Suppression]] = {}
    index = ProjectIndex()
    for path in discover(paths, excludes):
        unit, error = _load(path)
        result.files_checked += 1
        if error is not None:
            result.diagnostics.append(error)
            continue
        units.append(unit)
        suppressions[unit.path] = parse_suppressions(unit.source)
        index.add_module(unit)

    rules = [r for r in all_rules()
             if select is None or r.code in select]
    for unit in units:
        file_suppressions = suppressions[unit.path]
        for rule in rules:
            for diag in rule.check(unit, index):
                allow = file_suppressions.get(diag.line)
                if allow is not None and allow.allows(diag.code):
                    allow.used.add(diag.code)
                else:
                    result.diagnostics.append(diag)

    checked_codes = {r.code for r in rules}
    for unit in units:
        for allow in suppressions[unit.path].values():
            relevant = [c for c in allow.codes if c in checked_codes]
            if not relevant:
                continue
            if allow.used:
                result.suppressions_used += 1
            unused = [c for c in relevant if c not in allow.used]
            if unused:
                result.diagnostics.append(Diagnostic(
                    file=unit.path,
                    line=allow.line,
                    col=0,
                    code=UNUSED_SUPPRESSION,
                    message=("unused suppression: no "
                             f"{', '.join(unused)} diagnostic fires on "
                             "this line — remove the stale allow"),
                ))

    result.diagnostics.sort(key=lambda d: (d.file, d.line, d.col, d.code))
    return result
