"""Invariant lint + runtime sanitizers for the cost/determinism rules.

Every claim this reproduction makes — competitive ratios, the
prepared-drift gap, byte-identical ``bench_results/`` artifacts — rests
on invariants that used to be conventions: simulated costs flow only
through the charge APIs, attribution windows always close, telemetry
never charges, artifact-producing code is deterministic.  This package
makes them *checkable*:

* **Static lint** (``python -m repro.analysis`` or the ``repro-lint``
  entry point): AST rules ``RPL101``-``RPL106`` over the whole tree,
  with ``# repro: allow[RPLxxx] -- reason`` inline suppressions and
  unused-suppression detection (``RPL100``).  See
  :mod:`repro.analysis.builtin` for the rules and their rationales.
* **Runtime sanitizers** (:mod:`repro.analysis.sanitizers`):
  :class:`~repro.analysis.sanitizers.LedgerSanitizer` catches simulated
  charges landing outside any attribution window (the
  cooperative-scheduler analogue of a race detector), and
  :class:`~repro.analysis.sanitizers.DeterminismSanitizer` hashes
  event/artifact streams across a double run.  Both are opt-in under
  pytest via ``--sanitize={ledger,determinism,all}``.

Adding a rule
-------------

1. Pick the next free ``RPL1xx`` code.
2. In :mod:`repro.analysis.builtin` (or your own module imported from
   there), subclass :class:`~repro.analysis.rules.Rule`, set ``code``,
   ``name`` and a ``rationale`` that explains the *discipline* (it is
   what ``--explain`` prints — say why the invariant matters and what
   the fix looks like), and implement ``check(unit, index)`` yielding
   :class:`~repro.analysis.diagnostics.Diagnostic` objects (the
   ``self.diag(unit, node, message)`` helper anchors one at an AST
   node).  Decorate the class with
   :func:`~repro.analysis.rules.register`.
3. Cross-file facts (class hierarchies) come from the shared
   :class:`~repro.analysis.rules.ProjectIndex` built before any rule
   runs — extend it there rather than re-walking files per rule.
4. Add one *good* and one *bad* golden fixture under
   ``tests/analysis_fixtures/`` and a case in
   ``tests/test_analysis_rules.py`` proving the rule fires (and stays
   quiet) where intended; then run the linter over the repo and fix or
   ``# repro: allow[...]`` every finding it surfaces — a rule that is
   not clean over the tree does not ship.
"""

from repro.analysis.diagnostics import Diagnostic, Suppression
from repro.analysis.engine import AnalysisResult, analyze
from repro.analysis.rules import (
    ModuleUnit,
    ProjectIndex,
    Rule,
    all_rules,
    register,
)
from repro.analysis.sanitizers import (
    DeterminismSanitizer,
    LedgerSanitizer,
    SanitizerError,
    SanitizerViolation,
)

__all__ = [
    "AnalysisResult",
    "Diagnostic",
    "DeterminismSanitizer",
    "LedgerSanitizer",
    "ModuleUnit",
    "ProjectIndex",
    "Rule",
    "SanitizerError",
    "SanitizerViolation",
    "Suppression",
    "all_rules",
    "analyze",
    "register",
]
