"""Diagnostics and inline suppressions for the invariant linter.

A :class:`Diagnostic` is one finding: a rule code (``RPL1xx``), a
file/line/column anchor and a one-line message.  Findings are
suppressible *inline* — a ``# repro: allow[RPL101]`` comment on the
flagged line (optionally with a reason after ``--``) silences matching
codes on that line only — and every suppression must earn its keep: a
suppression that silences nothing is itself reported as
:data:`UNUSED_SUPPRESSION` (code ``RPL100``), so stale annotations
cannot accumulate after the code they excused is fixed.

Suppression syntax::

    charge(x)  # repro: allow[RPL104] -- replaying a recorded charge
    weird()    # repro: allow[RPL101,RPL102] -- seeded upstream

    # repro: allow[RPL103] -- spans both methods; closed by close()
    tracer.begin_query(cold)

A comment alone on its line suppresses the *next* line instead (for
annotations that would not fit beside the code).  The comment scanner
runs on :mod:`tokenize` output, so suppressions inside string literals
are never honoured.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: Code reported for a suppression comment that silenced no diagnostic.
UNUSED_SUPPRESSION = "RPL100"

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[A-Z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a source location."""

    file: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form (``file:line:col: CODE msg``)."""
        return f"{self.file}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready shape for ``--format json``."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    codes: tuple[str, ...]
    reason: str | None = None
    #: Codes that actually silenced a diagnostic (filled by the engine).
    used: set = field(default_factory=set)

    def allows(self, code: str) -> bool:
        """True when this suppression covers ``code``."""
        return code in self.codes


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Extract ``# repro: allow[...]`` comments, keyed by line number.

    A trailing comment suppresses its own line; a comment alone on its
    line suppresses the line below it.  Only real comment tokens count —
    the pattern appearing inside a string literal (e.g. in this linter's
    own tests) is ignored.  Unparseable source yields no suppressions;
    the engine reports the syntax error through other means.
    """
    out: dict[int, Suppression] = {}
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                continue
            codes = tuple(
                c.strip() for c in match.group("codes").split(",") if c.strip()
            )
            if not codes:
                continue
            row, col = tok.start
            standalone = (row <= len(lines)
                          and not lines[row - 1][:col].strip())
            target = row
            if standalone:
                # Apply to the next code line, skipping continuation
                # comments and blanks below the annotation.
                target = row + 1
                while (target <= len(lines)
                       and (not lines[target - 1].strip()
                            or lines[target - 1].lstrip().startswith("#"))):
                    target += 1
            out[target] = Suppression(
                line=row,
                codes=codes,
                reason=match.group("reason"),
            )
    except tokenize.TokenizeError:
        pass
    return out
