"""Experiment execution helpers shared by benchmarks, examples and tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.database import Database
from repro.exec.iterator import Operator
from repro.exec.stats import RunResult, measure


@dataclass
class Measurement:
    """One named measured run."""

    label: str
    result: RunResult
    extras: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Simulated execution time in seconds."""
        return self.result.total_seconds


def run_cold(db: Database, label: str, plan: Operator,
             keep_rows: bool = False, **extras) -> Measurement:
    """Measure one cold execution of ``plan``."""
    result = measure(db, plan, cold=True, keep_rows=keep_rows)
    return Measurement(label=label, result=result, extras=dict(extras))


def normalized(value: float, baseline: float) -> float:
    """``value / baseline`` guarding the divide-by-zero edge."""
    if baseline <= 0:
        return 1.0 if value <= 0 else float("inf")
    return value / baseline


PlanFactory = Callable[[], Operator]


def sweep(db: Database, factories: dict[str, PlanFactory],
          keep_rows: bool = False) -> dict[str, Measurement]:
    """Measure each labeled plan factory once, cold."""
    out = {}
    for label, factory in factories.items():
        out[label] = run_cold(db, label, factory(), keep_rows=keep_rows)
    return out
