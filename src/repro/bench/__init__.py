"""Benchmark harness utilities: runners and paper-style reporting."""

from repro.bench.reporting import (
    format_series,
    format_table,
    format_value,
    results_dir,
    save_report,
)
from repro.bench.runner import Measurement, normalized, run_cold, sweep

__all__ = [
    "Measurement",
    "format_series",
    "format_table",
    "format_value",
    "normalized",
    "results_dir",
    "run_cold",
    "save_report",
    "sweep",
]
