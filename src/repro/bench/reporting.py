"""Paper-style ASCII reporting for experiment results.

Every benchmark prints the same rows/series the paper's tables and figures
report, and can tee them into ``bench_results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence


def format_value(value: object, precision: int = 3) -> str:
    """Human-format one cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}g}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths, strict=False)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths, strict=False)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object],
                  ys: Sequence[object]) -> str:
    """Render one figure series as ``name: (x, y) ...`` pairs."""
    pairs = ", ".join(
        f"({format_value(x)}, {format_value(y)})" for x, y in zip(xs, ys, strict=False)
    )
    return f"{name}: {pairs}"


def results_dir(root: str | None = None) -> str:
    """The directory where benchmarks tee their printed output."""
    base = root or os.environ.get("REPRO_RESULTS_DIR", "bench_results")
    os.makedirs(base, exist_ok=True)
    return base


def save_report(name: str, text: str, root: str | None = None) -> str:
    """Write one experiment report to ``bench_results/<name>.txt``."""
    path = os.path.join(results_dir(root), f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
        if not text.endswith("\n"):
            fh.write("\n")
    return path
