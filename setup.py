"""Setup shim.

The sandbox has no ``wheel`` package and no network, so PEP 660 editable
installs (which build a wheel) fail; this shim enables the legacy
``pip install -e . --no-build-isolation`` path via ``setup.py develop``.
"""

from setuptools import setup

setup()
