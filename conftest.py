"""Repo-root pytest wiring for the opt-in runtime sanitizers.

``pytest --sanitize=ledger`` arms a
:class:`~repro.analysis.sanitizers.LedgerSanitizer` on every
:class:`~repro.runtime.EngineRuntime` constructed during each test, and
fails the test if any simulated charge or integer-counter bump landed
outside an attribution window (after the first window armed it).
``--sanitize=determinism`` unlocks the double-run determinism tests in
``tests/test_analysis_sanitizers.py``; ``--sanitize=all`` is both.  CI
runs a tier-1 subset with ``--sanitize=all``; the plain suite is
unaffected.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `pytest` work without PYTHONPATH=src (CI still sets it).
_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize", action="store", default="", metavar="MODES",
        help="arm runtime sanitizers: comma list of "
             "'ledger', 'determinism', or 'all'",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_suite_sanitizer: test manages its own sanitizers (or plants "
        "deliberate violations); exempt from --sanitize=ledger arming",
    )


def sanitize_modes(config) -> set:
    """The armed sanitizer modes, with 'all' expanded."""
    raw = config.getoption("--sanitize")
    modes = {m.strip() for m in raw.split(",") if m.strip()}
    if "all" in modes:
        modes |= {"ledger", "determinism"}
    return modes


@pytest.fixture
def sanitizers_enabled(request) -> set:
    """Which sanitizer modes this run armed (may be empty)."""
    return sanitize_modes(request.config)


@pytest.fixture(autouse=True)
def _ledger_sanitizer(request):
    """Under ``--sanitize=ledger``: every runtime built during the test
    gets a collecting sanitizer; violations fail the test at teardown."""
    if ("ledger" not in sanitize_modes(request.config)
            or request.node.get_closest_marker("no_suite_sanitizer")):
        yield
        return

    from repro.analysis.sanitizers import LedgerSanitizer
    from repro.runtime import EngineRuntime

    installed = []
    orig_init = EngineRuntime.__init__

    def init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        installed.append(LedgerSanitizer(self, strict=False).install())

    mp = pytest.MonkeyPatch()
    mp.setattr(EngineRuntime, "__init__", init)
    try:
        yield
    finally:
        mp.undo()
        for sanitizer in installed:
            sanitizer.check()  # final counter sweep (non-strict: collects)
            sanitizer.uninstall()
        violations = [v for s in installed for v in s.violations]
        if violations:
            lines = "\n".join("  " + v.render() for v in violations)
            pytest.fail(
                f"LedgerSanitizer: {len(violations)} unattributed-cost "
                f"violation(s):\n{lines}",
                pytrace=False,
            )
