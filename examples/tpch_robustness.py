"""TPC-H robustness: stale statistics, a tuning tool, and the repair.

Reproduces the paper's motivation end to end at laptop scale:

1. Load TPC-H in two chronological batches and collect statistics after
   the first — every recent date range now estimates to ≈ 0 rows.
2. Let the index advisor "tune" the workload under a space budget.
3. Run queries three ways: untuned (full scans), tuned (the cost-based
   planner now walks into the stale-estimate traps), and tuned with all
   access paths replaced by Smooth Scan.

Run:  python examples/tpch_robustness.py [--scale 0.005]
"""

import argparse

from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.experiments.fig1 import make_tuned_tpch
from repro.workloads.tpch import TpchPlanBuilder, build_query

QUERIES = ["Q1", "Q4", "Q6", "Q7", "Q12", "Q14", "Q19"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.005,
                        help="TPC-H scale factor (default 0.005)")
    args = parser.parse_args()

    setup = make_tuned_tpch(scale_factor=args.scale)
    print("tuning indexes created:", setup.recommended, "\n")

    rows = []
    for name in QUERIES:
        times = {}
        for mode in ("original", "tuned", "smooth"):
            builder = TpchPlanBuilder(setup.db, setup.catalog, mode)
            plan = build_query(name, builder)
            times[mode] = run_cold(setup.db, f"{mode}:{name}", plan).seconds
        rows.append([
            name,
            f"{times['original']:.3f}",
            f"{times['tuned']:.3f}",
            f"{times['tuned'] / times['original']:.2f}x",
            f"{times['smooth']:.3f}",
        ])
    print(format_table(
        ["query", "original_s", "tuned_s", "tuned/orig", "smooth_s"],
        rows,
        title="Tuning can hurt; Smooth Scan repairs it "
              "(simulated seconds, cold runs)",
    ))
    print("\nThe 'tuned' regressions come from index paths chosen on "
          "stale/AVI estimates;\nSmooth Scan needs no estimates at all.")


if __name__ == "__main__":
    main()
