"""Skew adaptivity: why the Elastic policy morphs two ways (Figure 8).

Builds a table whose matching tuples form a dense physically-clustered
head plus a sparse random tail, then compares the Selectivity-Increase
policy (which can only grow its morphing region) against Elastic (which
shrinks back after the head).  SI ends up reading a large fraction of the
table; Elastic converges back to single-page probes.

Run:  python examples/skew_adaptivity.py
"""

from repro import Database, KeyRange
from repro.core import ElasticPolicy, SelectivityIncreasePolicy, SmoothScan
from repro.exec import measure
from repro.workloads import build_skew_table


def main() -> None:
    db = Database()
    table = build_skew_table(db, num_tuples=600_000, sparse_fraction=2e-4)
    print(f"skew table: {table.row_count} rows over {table.num_pages} "
          "pages; query: c2 = 0 (dense head + sparse tail)\n")

    for policy in (SelectivityIncreasePolicy(), ElasticPolicy()):
        scan = SmoothScan(table, "c2", KeyRange.equal(0), policy=policy)
        result = measure(db, scan)
        stats = scan.last_stats
        print(f"policy={policy.name}")
        print(f"  rows: {result.row_count}, "
              f"sim time: {result.total_seconds:.3f}s")
        print(f"  distinct pages fetched: {stats.pages_fetched} "
              f"of {table.num_pages}")
        print(f"  largest morphing region: {stats.max_region_used} pages")
        # The region trace shows growth through the head and (for
        # Elastic) the shrink-back through the sparse tail.
        trace = stats.region_trace
        sampled = trace[:: max(1, len(trace) // 8)]
        print(f"  region trace (probe#, region): {sampled}\n")


if __name__ == "__main__":
    main()
