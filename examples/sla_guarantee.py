"""SLA-driven morphing: bound the worst case from the cost model.

Uses Section V's Eq. (23) to derive the cardinality at which Smooth Scan
must take over from a traditional index scan so that, even at 100%
selectivity, the total cost stays under an SLA of two full scans — then
executes across the selectivity range and verifies the bound holds.

Run:  python examples/sla_guarantee.py
"""

from repro import Database, SLADrivenTrigger, SmoothScan
from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.costmodel import (
    CostParams,
    sla_bound_for_full_scans,
    trigger_cardinality,
)
from repro.exec import FullTableScan
from repro.workloads import build_micro_table, selectivity_range


def main() -> None:
    db = Database()
    table = build_micro_table(db, num_tuples=120_000)

    params = CostParams.from_table(table, db.config, db.profile, "c2")
    sla_cost = sla_bound_for_full_scans(params, multiple=2.0)
    trigger = trigger_cardinality(params, sla_cost)
    print(f"cost model: full scan = {params.num_pages} I/O units; "
          f"SLA = 2 full scans = {sla_cost:.0f} units")
    print(f"derived trigger cardinality: {trigger} tuples "
          "(morph no later than this)\n")

    # The executed bound includes per-tuple CPU the I/O model omits, so
    # express it against a measured full scan, as Figure 7b plots it.
    full = run_cold(db, "full",
                    FullTableScan(table)).seconds
    bound_s = 2.0 * full
    print(f"measured full scan: {full:.3f}s -> SLA bound {bound_s:.3f}s\n")

    rows = []
    for sel_pct in (0.001, 0.01, 0.1, 1.0, 10.0, 100.0):
        scan = SmoothScan(
            table, "c2", selectivity_range(sel_pct / 100.0),
            trigger=SLADrivenTrigger(trigger),
        )
        seconds = run_cold(db, "sla", scan).seconds
        rows.append([
            sel_pct, f"{seconds:.4f}",
            "yes" if seconds <= bound_s else "NO",
        ])
    print(format_table(["sel_%", "time_s", "within SLA?"], rows,
                       title="SLA-driven Smooth Scan across selectivities"))


if __name__ == "__main__":
    main()
