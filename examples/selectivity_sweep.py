"""Selectivity sweep: a small-scale Figure 5 on your terminal.

Sweeps the micro-benchmark query over the selectivity interval and shows
where each access path wins — Index Scan at the very low end, Full Scan
at the high end without ordering, and Smooth Scan tracking the best
alternative throughout (the paper's robustness claim).

Run:  python examples/selectivity_sweep.py [--order-by] [--ssd]
"""

import argparse

from repro import DiskProfile
from repro.bench.reporting import format_table
from repro.experiments.fig5 import PATHS, run_fig5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--order-by", action="store_true",
                        help="require output in index-key order (Fig 5a)")
    parser.add_argument("--ssd", action="store_true",
                        help="use the SSD cost profile (Fig 10)")
    parser.add_argument("--tuples", type=int, default=120_000,
                        help="table size (default 120K rows = 1000 pages)")
    args = parser.parse_args()

    result = run_fig5(
        order_by=args.order_by,
        num_tuples=args.tuples,
        profile=DiskProfile.ssd() if args.ssd else DiskProfile.hdd(),
    )
    print(result.report())

    print("\nwinner per selectivity point:")
    rows = []
    for i, sel in enumerate(result.selectivities_pct):
        times = {p: result.seconds[p][i] for p in PATHS}
        winner = min(times, key=times.get)
        smooth_vs_best = times["smooth"] / max(min(times.values()), 1e-12)
        rows.append([sel, winner, f"{smooth_vs_best:.2f}x"])
    print(format_table(["sel_%", "best path", "smooth vs best"], rows))


if __name__ == "__main__":
    main()
