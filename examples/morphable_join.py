"""Morphable joins: the Section IV-B extension in action.

"INLJ morphs into a variant of Hash Join over time, with the index used
only when a tuple is not found in the cache."  This example joins an
outer input with heavy key reuse against an indexed inner table and shows
the MorphingIndexJoin converging to hash-join behaviour: index descents
stop once each key's pages are cached, and inner pages are read at most
once.

Run:  python examples/morphable_join.py
"""

import random

from repro import Database
from repro.bench.reporting import format_table
from repro.bench.runner import run_cold
from repro.core import MorphingIndexJoin
from repro.exec import FullTableScan, HashJoin, IndexNestedLoopJoin
from repro.storage.types import Schema


def main() -> None:
    rng = random.Random(2015)
    db = Database()
    distinct_keys = 300
    inner = db.load_table(
        "inner_t", Schema.of_ints(["i_key", "i_val"]),
        [((i * 17) % distinct_keys, i) for i in range(12_000)],
    )
    db.create_index("inner_t", "i_key")
    outer = db.load_table(
        "outer_t", Schema.of_ints(["o_id", "o_key"]),
        [(i, rng.randrange(distinct_keys)) for i in range(9_000)],
    )
    print(f"outer: {outer.row_count} rows over {distinct_keys} keys "
          f"(~{outer.row_count // distinct_keys}x reuse); "
          f"inner: {inner.row_count} rows, {inner.num_pages} pages\n")

    morph_op = MorphingIndexJoin(FullTableScan(outer), inner,
                                 "i_key", "o_key")
    plans = {
        "classic INLJ": IndexNestedLoopJoin(FullTableScan(outer), inner,
                                            "i_key", "o_key"),
        "morphing INLJ->HJ": morph_op,
        "hash join": HashJoin(FullTableScan(outer), FullTableScan(inner),
                              ["o_key"], ["i_key"]),
    }
    rows = []
    for name, plan in plans.items():
        m = run_cold(db, name, plan)
        rows.append([name, m.result.row_count, f"{m.seconds:.3f}",
                     m.result.disk.pages_read])
    print(format_table(["join", "rows", "time_s", "pages_read"], rows))

    stats = morph_op.last_stats
    print(f"\nmorphing join internals: {stats.index_probes} index probes "
          f"(one per distinct key), {stats.cache_hits} cache hits "
          f"(hit rate {stats.cache_hit_rate:.1%}), "
          f"{stats.pages_fetched} inner pages fetched "
          f"of {inner.num_pages}")


if __name__ == "__main__":
    main()
