"""The cached-plan drift story: prepare once, drift the parameter.

Run:  python examples/prepared_drift.py

This is the paper's headline serving scenario end to end.  A statement
is prepared once (lexed/parsed/bound a single time), its plan is cached
at the first execution, and the plan is *replayed* as the bind parameter
drifts — no re-optimization.  The classic cost-based plan (an index
scan, perfect at 0.05% selectivity) collapses as the parameter widens;
preparing the same statement under ``enable_smooth`` caches a Smooth
Scan instead, and that one cached plan stays near-optimal everywhere
("the optimizer can always choose a Smooth Scan", §IV-B).
"""

from repro import Database, PlannerOptions
from repro.workloads import build_micro_table


def main() -> None:
    db = Database()
    table = build_micro_table(db, num_tuples=120_000)
    db.analyze()
    print(f"loaded {table.row_count} rows over {table.num_pages} pages\n")

    # Two sessions, same statement: classic cost-based vs. always-smooth.
    classic = db.connect(options=PlannerOptions(enable_sort_scan=False))
    smooth = db.connect(options=PlannerOptions(enable_sort_scan=False,
                                               enable_smooth=True))
    sql = "SELECT * FROM micro WHERE c2 >= :lo AND c2 < :hi"
    st_classic = classic.prepare(sql)
    st_smooth = smooth.prepare(sql)
    print(f"prepared ({st_classic.param_count} named parameters): {sql}\n")

    print(f"{'sel%':>6} {'rows':>8} {'cached classic':>15} "
          f"{'cached smooth':>14}   (simulated time; plan frozen at the "
          "first row)")
    for pct in (0.05, 0.5, 2.0, 10.0, 50.0, 100.0):
        params = {"lo": 0, "hi": round(pct * 1000)}  # domain is 0..100000
        r_classic = st_classic.run(params, keep_rows=False)
        r_smooth = st_smooth.run(params, keep_rows=False)
        path = r_classic.decisions[0].path
        print(f"{pct:6} {r_classic.row_count:8} "
              f"{r_classic.total_seconds:13.3f}s [{path}]"
              f"{r_smooth.total_seconds:12.3f}s "
              f"[{r_smooth.decisions[0].path}]")

    print(f"\n{db.plan_cache.describe()}")
    print(f"statements compiled: {db.sql_compile_count} "
          "(each prepared statement parsed/bound exactly once)")

    # Cursors stream: fetch a page of rows without materializing the
    # rest; the partial measurement shows how little work was charged.
    cur = classic.cursor()
    cur.execute("SELECT c1, c2 FROM micro WHERE c2 < ?", (90_000,))
    first = cur.fetchmany(10)
    partial = cur.result()
    print(f"\nstreaming: fetched {len(first)} rows, produced "
          f"{partial.row_count} so far "
          f"(partial={partial.run.extras['partial']}), "
          f"{partial.disk.requests} I/O requests charged")
    cur.close()


if __name__ == "__main__":
    main()
