"""Quickstart: build a table, compare access paths, inspect Smooth Scan.

Run:  python examples/quickstart.py
"""

from repro import (
    Between,
    Database,
    FullTableScan,
    IndexScan,
    KeyRange,
    SmoothScan,
    SortScan,
    measure,
)
from repro.workloads import build_micro_table


def main() -> None:
    # A database on the default HDD profile (10:1 random:sequential).
    db = Database()

    # The paper's micro-benchmark table: 10 int columns, 120 tuples/page,
    # a primary-key index on c1 and a secondary index on c2.
    table = build_micro_table(db, num_tuples=120_000)
    print(f"loaded {table.row_count} rows over {table.num_pages} pages\n")

    # SELECT * FROM micro WHERE c2 >= 0 AND c2 < 20000  (~20% selectivity)
    key_range = KeyRange(0, 20_000)
    predicate = Between("c2", 0, 20_000)

    plans = {
        "Full Table Scan": FullTableScan(table, predicate),
        "Index Scan": IndexScan(table, "c2", key_range),
        "Sort (bitmap) Scan": SortScan(table, "c2", key_range),
        "Smooth Scan": SmoothScan(table, "c2", key_range),
    }
    print(f"{'access path':22} {'rows':>7} {'sim time':>10} "
          f"{'I/O reqs':>9} {'read MB':>8}")
    for name, plan in plans.items():
        result = measure(db, plan)  # cold: caches dropped first
        print(f"{name:22} {result.row_count:7} "
              f"{result.total_seconds:9.3f}s "
              f"{result.disk.requests:9} "
              f"{result.disk.bytes_read / 1e6:8.1f}")

    # Smooth Scan exposes its morphing internals after each run.
    smooth = plans["Smooth Scan"]
    stats = smooth.last_stats
    print("\nSmooth Scan internals:")
    for key, value in stats.summary().items():
        print(f"  {key:20} {value}")

    # Batch-vectorized consumption: every operator also yields whole
    # batches (lists of rows) — Smooth Scan probes morphing-region runs
    # whole and flushes their output at the batch-size threshold.  Same
    # rows, same simulated costs, far less per-tuple Python overhead
    # (measure() drains this protocol too).
    ctx = db.cold_run()
    total = 0
    batch_sizes = []
    for batch in SmoothScan(table, "c2", key_range).batches(ctx):
        total += len(batch)
        batch_sizes.append(len(batch))
    print(f"\nbatch protocol: {total} rows in {len(batch_sizes)} batches "
          f"(largest {max(batch_sizes, default=0)})")


if __name__ == "__main__":
    main()
