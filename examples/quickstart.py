"""Quickstart: declarative queries, the planner's choices, Smooth Scan.

Run:  python examples/quickstart.py
"""

from repro import Between, Database, PlannerOptions, SmoothScan
from repro.workloads import build_micro_table


def main() -> None:
    # A database on the default HDD profile (10:1 random:sequential).
    db = Database()

    # The paper's micro-benchmark table: 10 int columns, 120 tuples/page,
    # a primary-key index on c1 and a secondary index on c2.
    table = build_micro_table(db, num_tuples=120_000)
    db.analyze()  # collect statistics for the cost-based planner
    print(f"loaded {table.row_count} rows over {table.num_pages} pages\n")

    # SELECT * FROM micro WHERE c2 >= 0 AND c2 < 20000 ORDER BY c2
    # (~20% selectivity), stated declaratively: the planner picks the
    # access path; no operator classes in sight.
    query = (
        db.query("micro")
        .where(Between("c2", 0, 20_000))
        .order_by("c2")
    )

    result = db.execute(query)  # cold: caches dropped first
    print("cost-based planner's choice:")
    print(result.explain())  # estimated vs. actual rows per plan node
    print(f"= {result.row_count} rows in {result.total_seconds:.3f}s "
          f"({result.disk.requests} I/O requests)\n")

    # Force each access path through the same declarative query — the
    # four curves of Figure 5 in miniature.
    print(f"{'access path':22} {'rows':>7} {'sim time':>10} "
          f"{'I/O reqs':>9} {'read MB':>8}")
    for path in ("full", "index", "sort", "smooth"):
        res = db.execute(query, keep_rows=False,
                         options=PlannerOptions(force_path=path))
        print(f"{path:22} {res.row_count:7} "
              f"{res.total_seconds:9.3f}s "
              f"{res.disk.requests:9} "
              f"{res.disk.bytes_read / 1e6:8.1f}")

    # "The optimizer can always choose a Smooth Scan" (§IV-B): with
    # enable_smooth the planner stops gambling on estimates entirely.
    smooth = db.execute(query, options=PlannerOptions(enable_smooth=True))
    scan = next(op for op in smooth.plan.operators()
                if isinstance(op, SmoothScan))
    print("\nSmooth Scan internals (from the declarative run):")
    for key, value in scan.last_stats.summary().items():
        print(f"  {key:20} {value}")

    # The result carries the planner's decision trail.
    decision = smooth.decisions[0]
    print(f"\ndecision: path={decision.path!r} column={decision.column!r} "
          f"est_rows={decision.estimated_cardinality}")


if __name__ == "__main__":
    main()
