"""Quickstart, SQL edition: the same tour as quickstart.py, typed as SQL.

Run:  python examples/sql_quickstart.py

Every statement goes through a Connection — the PEP-249-flavored session
layer: lexer → parser → binder → QuerySpec → the cost-based planner,
with a plan cache between them.  (``Database.sql()`` still works but is
deprecated; for an interactive version of this script, run
``python -m repro.sql``.)
"""

from repro import Database, PlannerOptions
from repro.workloads import build_micro_table


def main() -> None:
    db = Database()
    table = build_micro_table(db, num_tuples=120_000)
    db.analyze()
    conn = db.connect()
    print(f"loaded {table.row_count} rows over {table.num_pages} pages\n")

    # ~20% selectivity, stated as SQL; the planner picks the access path.
    query = """
        SELECT * FROM micro
        WHERE c2 >= 0 AND c2 < 20000
        ORDER BY c2
    """

    print("cost-based planner's choice:")
    # EXPLAIN through a cursor: a one-column result set of plan lines.
    for (line,) in conn.execute("EXPLAIN " + query):
        print(line)
    result = conn.run(query)  # cold run: caches dropped first
    print(f"= {result.row_count} rows in {result.total_seconds:.3f}s "
          f"({result.disk.requests} I/O requests)\n")

    # Force each access path with a hint comment — Figure 5 in miniature.
    print(f"{'access path':22} {'rows':>7} {'sim time':>10} {'I/O reqs':>9}")
    for path in ("full", "index", "sort", "smooth"):
        res = conn.run(
            f"SELECT /*+ force_path({path}) */ * FROM micro "
            "WHERE c2 >= 0 AND c2 < 20000 ORDER BY c2",
            keep_rows=False,
        )
        print(f"{path:22} {res.row_count:7} "
              f"{res.total_seconds:9.3f}s {res.disk.requests:9}")

    # Bind parameters: prepare once, execute with different values — the
    # second execution is a pure plan-cache hit (examples/prepared_drift.py
    # tells the full drift story).
    st = conn.prepare("SELECT count(*) AS n FROM micro WHERE c2 < ?")
    print()
    for hi in (5_000, 50_000):
        [(n,)] = st.execute((hi,)).fetchall()
        print(f"count(c2 < {hi}) = {n}  "
              f"[plan cache: {db.plan_cache.stats.describe()}]")

    # IN-lists ride index/smooth paths too: the binder extracts the
    # [min, max] key range and keeps membership as a residual check.
    picky = "EXPLAIN SELECT c1, c2 FROM micro WHERE c2 IN (5, 250, 90000)"
    print("\nIN-list through an index range:")
    for (line,) in conn.execute(picky):
        print(line)

    # "The optimizer can always choose a Smooth Scan" (§IV-B) — per
    # statement via a hint, or engine-wide via PlannerOptions.
    smoothed = conn.run(
        "SELECT /*+ smooth */ * FROM micro WHERE c2 < 20000"
    )
    decision = smoothed.decisions[0]
    print(f"\nsmooth hint: path={decision.path!r} "
          f"column={decision.column!r}")

    # Cursors stream rows through the batch engine; fetchmany never
    # materializes the rest of the result.
    cur = conn.execute("SELECT c1, c2 FROM micro WHERE c2 < 20000")
    page = cur.fetchmany(5)
    print(f"\nfirst {len(page)} rows, streamed: {page}")
    cur.close()

    # Planner options still compose with hints, per statement.
    print("\nEXPLAIN under original-style options (no secondary paths):")
    print(conn.run(
        "EXPLAIN SELECT count(*) AS n FROM micro WHERE c2 < 20000",
        options=PlannerOptions(enable_index=False, enable_sort_scan=False),
    ))


if __name__ == "__main__":
    main()
