"""Quickstart, SQL edition: the same tour as quickstart.py, typed as SQL.

Run:  python examples/sql_quickstart.py

Every statement goes through Database.sql(): lexer → parser → binder →
QuerySpec → the cost-based planner — the full declarative path, now with
text as the entry point.  (For an interactive version of this script,
run ``python -m repro.sql``.)
"""

from repro import Database, PlannerOptions
from repro.workloads import build_micro_table


def main() -> None:
    db = Database()
    table = build_micro_table(db, num_tuples=120_000)
    db.analyze()
    print(f"loaded {table.row_count} rows over {table.num_pages} pages\n")

    # ~20% selectivity, stated as SQL; the planner picks the access path.
    query = """
        SELECT * FROM micro
        WHERE c2 >= 0 AND c2 < 20000
        ORDER BY c2
    """

    print("cost-based planner's choice:")
    print(db.explain(query))  # plan tree before running (act=?)
    result = db.sql(query)    # cold run: caches dropped first
    print(f"= {result.row_count} rows in {result.total_seconds:.3f}s "
          f"({result.disk.requests} I/O requests)\n")

    # Force each access path with a hint comment — Figure 5 in miniature.
    print(f"{'access path':22} {'rows':>7} {'sim time':>10} {'I/O reqs':>9}")
    for path in ("full", "index", "sort", "smooth"):
        res = db.sql(
            f"SELECT /*+ force_path({path}) */ * FROM micro "
            "WHERE c2 >= 0 AND c2 < 20000 ORDER BY c2",
            keep_rows=False,
        )
        print(f"{path:22} {res.row_count:7} "
              f"{res.total_seconds:9.3f}s {res.disk.requests:9}")

    # IN-lists ride index/smooth paths too: the binder extracts the
    # [min, max] key range and keeps membership as a residual check.
    picky = "SELECT c1, c2 FROM micro WHERE c2 IN (5, 250, 90000)"
    print("\nIN-list through an index range:")
    print(db.explain(picky))

    # "The optimizer can always choose a Smooth Scan" (§IV-B) — per
    # statement via a hint, or engine-wide via PlannerOptions.
    smooth = db.sql(
        "SELECT /*+ smooth */ * FROM micro WHERE c2 < 20000"
    )
    decision = smooth.decisions[0]
    print(f"\nsmooth hint: path={decision.path!r} "
          f"column={decision.column!r}")

    # EXPLAIN SELECT is parsed too, and planner options still compose.
    print("\nEXPLAIN under original-style options (no secondary paths):")
    print(db.sql(
        "EXPLAIN SELECT count(*) AS n FROM micro WHERE c2 < 20000",
        options=PlannerOptions(enable_index=False, enable_sort_scan=False),
    ))


if __name__ == "__main__":
    main()
